// Package core composes the Camouflage system — the paper's primary
// contribution — from its substrates: the bootloader generates kernel
// PAuth keys and synthesises the XOM key-setter; the hypervisor enforces
// XOM and MMU lockdown; the instrumented kernel switches keys on every
// EL0/EL1 transition, signs return addresses with the hardened Listing-3
// modifier, and protects writable function pointers and operations-table
// pointers with object-bound PACs; and the §4.1 static verifier checks the
// final image before it boots.
package core

import (
	"context"
	"fmt"

	"camouflage/internal/analysis"
	"camouflage/internal/boot"
	"camouflage/internal/codegen"
	"camouflage/internal/cpu"
	"camouflage/internal/kernel"
	"camouflage/internal/pac"
	"camouflage/internal/snapshot"
)

// ProtectionLevel selects how much of the Camouflage design is enabled —
// the three configurations of Figures 3 and 4.
type ProtectionLevel int

// Protection levels.
const (
	// LevelNone is the unprotected baseline kernel.
	LevelNone ProtectionLevel = iota
	// LevelBackwardEdge enables return-address protection only (Listing
	// 3, key IB).
	LevelBackwardEdge
	// LevelFull adds forward-edge CFI (key IA) and DFI for operations-
	// table and other sensitive data pointers (key DB).
	LevelFull
)

// String names the level as the figures do.
func (l ProtectionLevel) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelBackwardEdge:
		return "backward-edge"
	case LevelFull:
		return "full"
	}
	return "level?"
}

// LevelByName parses a level name as String prints it ("none",
// "backward-edge", "full") — the wire format of the service daemon's
// machine-lease API.
func LevelByName(name string) (ProtectionLevel, error) {
	for _, l := range []ProtectionLevel{LevelNone, LevelBackwardEdge, LevelFull} {
		if l.String() == name {
			return l, nil
		}
	}
	return 0, fmt.Errorf("core: unknown protection level %q", name)
}

// Config returns the codegen configuration for a level.
func (l ProtectionLevel) Config() *codegen.Config {
	switch l {
	case LevelBackwardEdge:
		return codegen.ConfigBackward()
	case LevelFull:
		return codegen.ConfigFull()
	}
	return codegen.ConfigNone()
}

// Options tunes a System beyond its protection level.
type Options struct {
	// Seed drives all boot-time randomness.
	Seed uint64
	// FailureThreshold overrides the §5.4 brute-force halt threshold.
	FailureThreshold int
	// Compat builds the §5.5 backwards-compatible kernel and runs it on
	// an ARMv8.0 core.
	Compat bool
	// Scheme overrides the backward-edge scheme (for Figure 2 studies);
	// zero value keeps the level's default.
	Scheme codegen.Scheme
	// CPUs is the vCPU count of the machine (0/1: uniprocessor,
	// bit-identical to pre-SMP builds; up to kernel.MaxCPUs).
	CPUs int
	// Parallel runs a multi-core machine truly in parallel — one
	// goroutine per vCPU — instead of the deterministic round-robin
	// scheduler. Runtime-only: it does not enter the build or the
	// snapshot pool key, so parallel and deterministic requests share
	// warm pool entries. See kernel.Kernel.Parallel for the memory-model
	// contract.
	Parallel bool
}

// System is a booted Camouflage machine.
type System struct {
	// Kernel is the underlying kernel runtime.
	Kernel *kernel.Kernel
	// Level is the protection level the system was built with.
	Level ProtectionLevel
}

// KernelOptionsFor lowers (level, opts) to the kernel build options —
// the normalization every pool consumer must share so that equivalent
// requests land on the same snapshot.KeyForOptions key. The service
// daemon's machine-lease admission uses it directly.
func KernelOptionsFor(level ProtectionLevel, opts Options) kernel.Options {
	return kernelOptions(level, opts)
}

// kernelOptions lowers (level, opts) to the kernel build options; shared
// by New and the pool key derivation of Replicate.
func kernelOptions(level ProtectionLevel, opts Options) kernel.Options {
	cfg := level.Config()
	if opts.Scheme != codegen.SchemeNone {
		cfg.Scheme = opts.Scheme
	}
	cfg.NumCPUs = opts.CPUs
	kopts := kernel.Options{
		Config:           cfg,
		Seed:             opts.Seed,
		FailureThreshold: opts.FailureThreshold,
	}
	if opts.Compat {
		kopts.Compat = boot.ModeV80
		kopts.V80 = true
		cfg.Scheme = codegen.SchemeCamouflageCompat
		cfg.ForwardCFI = false
		cfg.DFI = false
	}
	return kopts
}

// New builds, statically verifies (§4.1, via kernel.VerifyImage inside
// the shared boot pipeline), and boots a system.
func New(level ProtectionLevel, opts Options) (*System, error) {
	k, err := snapshot.BootOptions(kernelOptions(level, opts))()
	if err != nil {
		return nil, err
	}
	k.Parallel = opts.Parallel
	return &System{Kernel: k, Level: level}, nil
}

// SystemSnapshot is an immutable capture of a booted System. Fork new
// Systems from it in O(1) guest memory (copy-on-write) or Reset a
// dirtied descendant back to the captured point in O(pages touched).
// Safe for concurrent Fork/Reset.
type SystemSnapshot struct {
	// Level is the protection level the captured system was built with.
	Level ProtectionLevel

	snap *snapshot.Snapshot
}

// Snapshot captures the System's complete state — mid-execution captures
// are allowed; the live System keeps running unperturbed on a fresh
// copy-on-write overlay.
func (s *System) Snapshot() *SystemSnapshot {
	return &SystemSnapshot{Level: s.Level, snap: snapshot.Take(s.Kernel)}
}

// Fork builds an independent System resuming from the captured state
// without re-running codegen, the §4.1 verifier, or boot.
func (ss *SystemSnapshot) Fork() (*System, error) {
	k, err := ss.snap.Fork()
	if err != nil {
		return nil, err
	}
	return &System{Kernel: k, Level: ss.Level}, nil
}

// Reset rewinds a descendant System to the captured state, discarding
// everything it ran since.
func (ss *SystemSnapshot) Reset(s *System) error {
	return ss.snap.Reset(s.Kernel)
}

// Replicate builds n isolated Systems with the same level and options.
// The first System for a given option set pays one build+verify+boot
// (cached in the shared warm pool); the rest are copy-on-write forks of
// its post-boot snapshot, produced concurrently. Construction is
// deterministic and forking is exact, so every replica is identical to a
// sequentially built one (pinned by TestReplicateMatchesNew).
func Replicate(level ProtectionLevel, opts Options, n int) ([]*System, error) {
	return ReplicateContext(context.Background(), level, opts, n)
}

// ReplicateContext is Replicate with cancellation: once ctx is done no
// further replica is forked and ctx.Err() is returned.
func ReplicateContext(ctx context.Context, level ProtectionLevel, opts Options, n int) ([]*System, error) {
	kopts := kernelOptions(level, opts)
	snap, err := snapshot.Shared.SnapshotFor(snapshot.KeyFor(kopts), snapshot.BootOptions(kopts))
	if err != nil {
		return nil, err
	}
	systems := make([]*System, n)
	err = snapshot.ForEachContext(ctx, n, true, func(i int) error {
		k, err := snap.Fork()
		if err != nil {
			return err
		}
		k.Parallel = opts.Parallel
		systems[i] = &System{Kernel: k, Level: level}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return systems, nil
}

// RunProgram builds a user program, spawns it as pid 1 and runs it to
// completion, returning consumed cycles.
func (s *System) RunProgram(name string, build func(u *kernel.UserASM)) (uint64, error) {
	prog, err := kernel.BuildProgram(name, build)
	if err != nil {
		return 0, err
	}
	s.Kernel.RegisterProgram(1, prog)
	if _, err := s.Kernel.Spawn(1); err != nil {
		return 0, err
	}
	start := s.Kernel.CPU.Cycles
	stop := s.Kernel.Run(2_000_000_000)
	if stop.Kind != cpu.StopHLT {
		return 0, fmt.Errorf("core: program %q did not halt: %+v", name, stop)
	}
	return s.Kernel.CPU.Cycles - start, nil
}

// Stats summarises the machine state for reporting.
type Stats struct {
	Cycles      uint64
	Instrs      uint64
	PACFailures int
	OopsCount   int
	BootCycles  uint64
	Halted      bool
}

// Stats returns current counters.
func (s *System) Stats() Stats {
	return Stats{
		Cycles:      s.Kernel.CPU.Cycles,
		Instrs:      s.Kernel.CPU.Retired,
		PACFailures: s.Kernel.PACFailures,
		OopsCount:   len(s.Kernel.Oops),
		BootCycles:  s.Kernel.BootCycles,
		Halted:      s.Kernel.Halted,
	}
}

// KernelKeyInstalled reports whether the given key slot holds the
// bootloader-generated kernel key (sanity for examples and tests).
func (s *System) KernelKeyInstalled(id pac.KeyID) bool {
	return s.Kernel.CPU.Signer.Key(id) == s.Kernel.KernelKeysForTest().Keys[id]
}

// scanForKeyReads returns the key-read findings in a code image (exposed
// for the verifier's own tests).
func scanForKeyReads(text []byte) []analysis.Finding {
	var out []analysis.Finding
	for _, f := range analysis.ScanBytes(text) {
		if f.Kind == analysis.FindingKeyRead {
			out = append(out, f)
		}
	}
	return out
}
