// Package core composes the Camouflage system — the paper's primary
// contribution — from its substrates: the bootloader generates kernel
// PAuth keys and synthesises the XOM key-setter; the hypervisor enforces
// XOM and MMU lockdown; the instrumented kernel switches keys on every
// EL0/EL1 transition, signs return addresses with the hardened Listing-3
// modifier, and protects writable function pointers and operations-table
// pointers with object-bound PACs; and the §4.1 static verifier checks the
// final image before it boots.
package core

import (
	"fmt"
	"hash/fnv"
	"sync"

	"camouflage/internal/analysis"
	"camouflage/internal/boot"
	"camouflage/internal/codegen"
	"camouflage/internal/cpu"
	"camouflage/internal/kernel"
	"camouflage/internal/pac"
)

// ProtectionLevel selects how much of the Camouflage design is enabled —
// the three configurations of Figures 3 and 4.
type ProtectionLevel int

// Protection levels.
const (
	// LevelNone is the unprotected baseline kernel.
	LevelNone ProtectionLevel = iota
	// LevelBackwardEdge enables return-address protection only (Listing
	// 3, key IB).
	LevelBackwardEdge
	// LevelFull adds forward-edge CFI (key IA) and DFI for operations-
	// table and other sensitive data pointers (key DB).
	LevelFull
)

// String names the level as the figures do.
func (l ProtectionLevel) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelBackwardEdge:
		return "backward-edge"
	case LevelFull:
		return "full"
	}
	return "level?"
}

// Config returns the codegen configuration for a level.
func (l ProtectionLevel) Config() *codegen.Config {
	switch l {
	case LevelBackwardEdge:
		return codegen.ConfigBackward()
	case LevelFull:
		return codegen.ConfigFull()
	}
	return codegen.ConfigNone()
}

// Options tunes a System beyond its protection level.
type Options struct {
	// Seed drives all boot-time randomness.
	Seed uint64
	// FailureThreshold overrides the §5.4 brute-force halt threshold.
	FailureThreshold int
	// Compat builds the §5.5 backwards-compatible kernel and runs it on
	// an ARMv8.0 core.
	Compat bool
	// Scheme overrides the backward-edge scheme (for Figure 2 studies);
	// zero value keeps the level's default.
	Scheme codegen.Scheme
}

// System is a booted Camouflage machine.
type System struct {
	// Kernel is the underlying kernel runtime.
	Kernel *kernel.Kernel
	// Level is the protection level the system was built with.
	Level ProtectionLevel
}

// New builds, statically verifies, and boots a system.
func New(level ProtectionLevel, opts Options) (*System, error) {
	cfg := level.Config()
	if opts.Scheme != codegen.SchemeNone {
		cfg.Scheme = opts.Scheme
	}
	kopts := kernel.Options{
		Config:           cfg,
		Seed:             opts.Seed,
		FailureThreshold: opts.FailureThreshold,
	}
	if opts.Compat {
		kopts.Compat = boot.ModeV80
		kopts.V80 = true
		cfg.Scheme = codegen.SchemeCamouflageCompat
		cfg.ForwardCFI = false
		cfg.DFI = false
	}
	k, err := kernel.New(kopts)
	if err != nil {
		return nil, err
	}

	// §4.1 static verification of the built image: "no code exists in the
	// kernel ... which would read the keys from system registers". Key
	// *writes* are legitimate in exactly two places — the XOM setter and
	// the user-key restore of kernel exit — but key *reads* are forbidden
	// everywhere. The scan result is memoized per section-content hash:
	// replicated Systems (the parallel experiment runner builds one per
	// goroutine) reuse the verdict instead of rescanning identical images.
	for _, sec := range []string{".text", ".xom", ".vectors"} {
		if err := verifyNoKeyReads(sec, k.Img.Sections[sec].Bytes); err != nil {
			return nil, err
		}
	}

	if err := k.Boot(); err != nil {
		return nil, err
	}
	return &System{Kernel: k, Level: level}, nil
}

// verifiedImages caches §4.1 verification verdicts keyed by section
// content hash (sync.Map: the parallel runner verifies from many
// goroutines). Only clean verdicts are cached; failures always rescan.
var verifiedImages sync.Map

// verifyNoKeyReads runs the §4.1 key-read scan over one code section,
// memoizing clean results by content hash.
func verifyNoKeyReads(sec string, code []byte) error {
	h := fnv.New64a()
	h.Write([]byte(sec))
	h.Write(code)
	key := h.Sum64()
	if _, ok := verifiedImages.Load(key); ok {
		return nil
	}
	for _, f := range analysis.ScanBytes(code) {
		if f.Kind == analysis.FindingKeyRead {
			return fmt.Errorf("core: kernel %s reads keys: %s", sec, f)
		}
	}
	verifiedImages.Store(key, struct{}{})
	return nil
}

// Replicate builds n isolated Systems with the same level and options,
// concurrently, one goroutine per System. Each System has its own CPU,
// memory, MMU and kernel; the only sharing is the read-only verification
// memo above. Construction is deterministic, so every replica is
// identical to a sequentially built one.
func Replicate(level ProtectionLevel, opts Options, n int) ([]*System, error) {
	systems := make([]*System, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			systems[i], errs[i] = New(level, opts)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return systems, nil
}

// RunProgram builds a user program, spawns it as pid 1 and runs it to
// completion, returning consumed cycles.
func (s *System) RunProgram(name string, build func(u *kernel.UserASM)) (uint64, error) {
	prog, err := kernel.BuildProgram(name, build)
	if err != nil {
		return 0, err
	}
	s.Kernel.RegisterProgram(1, prog)
	if _, err := s.Kernel.Spawn(1); err != nil {
		return 0, err
	}
	start := s.Kernel.CPU.Cycles
	stop := s.Kernel.Run(2_000_000_000)
	if stop.Kind != cpu.StopHLT {
		return 0, fmt.Errorf("core: program %q did not halt: %+v", name, stop)
	}
	return s.Kernel.CPU.Cycles - start, nil
}

// Stats summarises the machine state for reporting.
type Stats struct {
	Cycles      uint64
	Instrs      uint64
	PACFailures int
	OopsCount   int
	BootCycles  uint64
	Halted      bool
}

// Stats returns current counters.
func (s *System) Stats() Stats {
	return Stats{
		Cycles:      s.Kernel.CPU.Cycles,
		Instrs:      s.Kernel.CPU.Retired,
		PACFailures: s.Kernel.PACFailures,
		OopsCount:   len(s.Kernel.Oops),
		BootCycles:  s.Kernel.BootCycles,
		Halted:      s.Kernel.Halted,
	}
}

// KernelKeyInstalled reports whether the given key slot holds the
// bootloader-generated kernel key (sanity for examples and tests).
func (s *System) KernelKeyInstalled(id pac.KeyID) bool {
	return s.Kernel.CPU.Signer.Key(id) == s.Kernel.KernelKeysForTest().Keys[id]
}

// scanForKeyReads returns the key-read findings in a code image (exposed
// for the verifier's own tests).
func scanForKeyReads(text []byte) []analysis.Finding {
	var out []analysis.Finding
	for _, f := range analysis.ScanBytes(text) {
		if f.Kind == analysis.FindingKeyRead {
			out = append(out, f)
		}
	}
	return out
}
