package insn

// Decode decodes a 32-bit A64 word into an Instr. Words outside the
// supported subset decode to an Instr with Op == OpInvalid; the CPU raises
// an undefined-instruction exception for those, and the §4.1 static
// analyser treats them as opaque data.
//
// Decode(Encode(i)) == i for every builder-produced instruction; the
// property tests in this package verify the round trip.
func Decode(w uint32) Instr {
	rd := Reg(w & 31)
	rn := Reg(w >> 5 & 31)
	rm := Reg(w >> 16 & 31)
	ra := Reg(w >> 10 & 31)
	sf := w>>31 == 1

	base := Instr{Rd: XZR, Rn: XZR, Rm: XZR, Ra: XZR, SF: true}

	switch {
	// Fixed-word system instructions first.
	case w == 0xD69F03E0:
		i := base
		i.Op = OpERET
		return i
	case w == 0xD5033FDF:
		i := base
		i.Op = OpISB
		return i
	case w == hintWord(0):
		i := base
		i.Op = OpNOP
		return i
	case w == hintWord(8):
		i := base
		i.Op = OpPACIA1716
		return i
	case w == hintWord(10):
		i := base
		i.Op = OpPACIB1716
		return i
	case w == hintWord(12):
		i := base
		i.Op = OpAUTIA1716
		return i
	case w == hintWord(14):
		i := base
		i.Op = OpAUTIB1716
		return i
	case w == 0xD65F0BFF:
		i := base
		i.Op = OpRETAA
		i.Rn = LR
		return i
	case w == 0xD65F0FFF:
		i := base
		i.Op = OpRETAB
		i.Rn = LR
		return i

	case w&0xFFE0001F == 0xD4000001:
		i := base
		i.Op = OpSVC
		i.Imm = int64(w >> 5 & 0xFFFF)
		return i
	case w&0xFFE0001F == 0xD4400000:
		i := base
		i.Op = OpHLT
		i.Imm = int64(w >> 5 & 0xFFFF)
		return i

	case w&0xFFD00000 == 0xD5100000:
		// MSR/MRS with op0 in {2,3}: bit 21 selects the direction.
		i := base
		if w&(1<<21) != 0 {
			i.Op = OpMRS
		} else {
			i.Op = OpMSR
		}
		i.Rd = rd
		i.Sys = SysReg(w>>19&3)<<14 | SysReg(w>>16&7)<<11 | SysReg(w>>12&15)<<7 | SysReg(w>>8&15)<<3 | SysReg(w>>5&7)
		return i

	case w&0xFFFFFC1F == 0xD61F0000:
		i := base
		i.Op = OpBR
		i.Rn = rn
		return i
	case w&0xFFFFFC1F == 0xD63F0000:
		i := base
		i.Op = OpBLR
		i.Rn = rn
		return i
	case w&0xFFFFFC1F == 0xD65F0000:
		i := base
		i.Op = OpRET
		i.Rn = rn
		return i
	case w&0xFFFFFC00 == 0xD71F0800:
		i := base
		i.Op = OpBRAA
		i.Rn = rn
		i.Rm = rd
		return i
	case w&0xFFFFFC00 == 0xD71F0C00:
		i := base
		i.Op = OpBRAB
		i.Rn = rn
		i.Rm = rd
		return i
	case w&0xFFFFFC00 == 0xD73F0800:
		i := base
		i.Op = OpBLRAA
		i.Rn = rn
		i.Rm = rd
		return i
	case w&0xFFFFFC00 == 0xD73F0C00:
		i := base
		i.Op = OpBLRAB
		i.Rn = rn
		i.Rm = rd
		return i

	case w&0xFFFFFBE0 == 0xDAC143E0:
		i := base
		i.Rd = rd
		if w&(1<<10) == 0 {
			i.Op = OpXPACI
		} else {
			i.Op = OpXPACD
		}
		return i

	case w&0xFFFFE3E0 == 0xDAC123E0:
		ops := [8]Op{OpPACIZA, OpPACIZB, OpPACDZA, OpPACDZB, OpAUTIZA, OpAUTIZB, OpAUTDZA, OpAUTDZB}
		i := base
		i.Op = ops[w>>10&7]
		i.Rd = rd
		i.Rn = XZR
		return i

	case w&0xFFFFE000 == 0xDAC10000:
		ops := [8]Op{OpPACIA, OpPACIB, OpPACDA, OpPACDB, OpAUTIA, OpAUTIB, OpAUTDA, OpAUTDB}
		i := base
		i.Op = ops[w>>10&7]
		i.Rd = rd
		i.Rn = rn
		return i

	case w&0x7FE0FC00 == 0x1AC03000 && w>>31 == 1:
		i := base
		i.Op = OpPACGA
		i.Rd = rd
		i.Rn = rn
		i.Rm = rm
		return i

	// Move wide.
	case w&0x1F800000 == 0x12800000 && w&0x60000000 != 0x20000000:
		i := base
		switch w >> 29 & 3 {
		case 0:
			i.Op = OpMOVN
		case 2:
			i.Op = OpMOVZ
		case 3:
			i.Op = OpMOVK
		}
		i.Rd = rd
		i.Imm = int64(w >> 5 & 0xFFFF)
		i.Shift = uint8(w>>21&3) * 16
		i.SF = sf
		return i

	// ADR/ADRP.
	case w&0x1F000000 == 0x10000000:
		i := base
		if w>>31 == 1 {
			i.Op = OpADRP
		} else {
			i.Op = OpADR
		}
		i.Rd = rd
		off := int64(w>>5&0x7FFFF)<<2 | int64(w>>29&3)
		i.Imm = signExtend(off, 21)
		return i

	// ADD/SUB immediate.
	case w&0x1F800000 == 0x11000000:
		i := base
		if w&(1<<30) != 0 {
			i.Op = OpSUBi
		} else {
			i.Op = OpADDi
		}
		if w&(1<<29) != 0 {
			return Instr{Op: OpInvalid} // ADDS/SUBS imm unsupported
		}
		i.Rd = rd
		i.Rn = rn
		i.Imm = int64(w >> 10 & 0xFFF)
		if w&(1<<22) != 0 {
			i.Shift = 12
		}
		i.SF = sf
		return i

	// Bitfield.
	case w&0x1F800000 == 0x13000000:
		i := base
		switch w >> 29 & 3 {
		case 0:
			i.Op = OpSBFM
		case 1:
			i.Op = OpBFM
		case 2:
			i.Op = OpUBFM
		default:
			return Instr{Op: OpInvalid}
		}
		i.Rd = rd
		i.Rn = rn
		i.ImmR = uint8(w >> 16 & 63)
		i.ImmS = uint8(w >> 10 & 63)
		i.SF = sf
		return i

	// Logical shifted register (LSL shift type only in this subset).
	case w&0x1F200000 == 0x0A000000:
		if w&0x00C00000 != 0 {
			return Instr{Op: OpInvalid} // non-LSL shift types unsupported
		}
		ops := [4]Op{OpANDr, OpORRr, OpEORr, OpANDSr}
		i := base
		i.Op = ops[w>>29&3]
		i.Rd = rd
		i.Rn = rn
		i.Rm = rm
		i.Shift = uint8(w >> 10 & 63)
		i.SF = sf
		return i

	// ADD/SUB shifted register.
	case w&0x1F200000 == 0x0B000000:
		if w&0x00C00000 != 0 {
			return Instr{Op: OpInvalid}
		}
		i := base
		switch w >> 29 & 3 {
		case 0:
			i.Op = OpADDr
		case 2:
			i.Op = OpSUBr
		case 3:
			i.Op = OpSUBSr
		default:
			return Instr{Op: OpInvalid} // ADDS shifted unsupported
		}
		i.Rd = rd
		i.Rn = rn
		i.Rm = rm
		i.Shift = uint8(w >> 10 & 63)
		i.SF = sf
		return i

	// MADD.
	case w&0x7FE08000 == 0x1B000000:
		i := base
		i.Op = OpMADD
		i.Rd = rd
		i.Rn = rn
		i.Rm = rm
		i.Ra = ra & 31
		i.SF = sf
		return i

	// UDIV / LSLV / LSRV.
	case w&0x7FE0FC00 == 0x1AC00800:
		i := base
		i.Op = OpUDIV
		i.Rd = rd
		i.Rn = rn
		i.Rm = rm
		i.SF = sf
		return i
	case w&0x7FE0FC00 == 0x1AC02000:
		i := base
		i.Op = OpLSLV
		i.Rd = rd
		i.Rn = rn
		i.Rm = rm
		i.SF = sf
		return i
	case w&0x7FE0FC00 == 0x1AC02400:
		i := base
		i.Op = OpLSRV
		i.Rd = rd
		i.Rn = rn
		i.Rm = rm
		i.SF = sf
		return i

	// CSEL.
	case w&0x7FE00C00 == 0x1A800000:
		i := base
		i.Op = OpCSEL
		i.Rd = rd
		i.Rn = rn
		i.Rm = rm
		i.Cond = Cond(w >> 12 & 15)
		i.SF = sf
		return i

	// Loads/stores, unsigned scaled offset.
	case w&0xFFC00000 == 0xF9000000:
		return ldst(OpSTR, rd, rn, int64(w>>10&0xFFF)*8)
	case w&0xFFC00000 == 0xF9400000:
		return ldst(OpLDR, rd, rn, int64(w>>10&0xFFF)*8)
	case w&0xFFC00000 == 0xB9000000:
		return ldst32(OpSTRW, rd, rn, int64(w>>10&0xFFF)*4)
	case w&0xFFC00000 == 0xB9400000:
		return ldst32(OpLDRW, rd, rn, int64(w>>10&0xFFF)*4)
	case w&0xFFC00000 == 0x39000000:
		return ldst32(OpSTRB, rd, rn, int64(w>>10&0xFFF))
	case w&0xFFC00000 == 0x39400000:
		return ldst32(OpLDRB, rd, rn, int64(w>>10&0xFFF))

	// Loads/stores, pre/post index.
	case w&0xFFE00C00 == 0xF8400400:
		return ldst(OpLDRpost, rd, rn, signExtend(int64(w>>12&0x1FF), 9))
	case w&0xFFE00C00 == 0xF8000C00:
		return ldst(OpSTRpre, rd, rn, signExtend(int64(w>>12&0x1FF), 9))

	// Load/store pair.
	case w&0xFFC00000 == 0xA9000000:
		return ldp(OpSTP, w, rd, rn)
	case w&0xFFC00000 == 0xA9400000:
		return ldp(OpLDP, w, rd, rn)
	case w&0xFFC00000 == 0xA9800000:
		return ldp(OpSTPpre, w, rd, rn)
	case w&0xFFC00000 == 0xA8C00000:
		return ldp(OpLDPpost, w, rd, rn)

	// Branches.
	case w&0x7C000000 == 0x14000000:
		i := base
		if w>>31 == 1 {
			i.Op = OpBL
		} else {
			i.Op = OpB
		}
		i.Imm = signExtend(int64(w&0x03FFFFFF), 26) * 4
		return i

	case w&0xFF000010 == 0x54000000:
		i := base
		i.Op = OpBcond
		i.Cond = Cond(w & 15)
		i.Imm = signExtend(int64(w>>5&0x7FFFF), 19) * 4
		return i

	case w&0x7E000000 == 0x34000000:
		i := base
		if w&(1<<24) != 0 {
			i.Op = OpCBNZ
		} else {
			i.Op = OpCBZ
		}
		i.Rd = rd
		i.Imm = signExtend(int64(w>>5&0x7FFFF), 19) * 4
		i.SF = sf
		return i
	}

	return Instr{Op: OpInvalid}
}

func ldst(op Op, rt, rn Reg, off int64) Instr {
	return Instr{Op: op, Rd: rt, Rn: rn, Rm: XZR, Ra: XZR, Imm: off, SF: true}
}

func ldst32(op Op, rt, rn Reg, off int64) Instr {
	return Instr{Op: op, Rd: rt, Rn: rn, Rm: XZR, Ra: XZR, Imm: off}
}

func ldp(op Op, w uint32, rt, rn Reg) Instr {
	return Instr{
		Op: op, Rd: rt, Rn: rn, Rm: Reg(w >> 10 & 31), Ra: XZR,
		Imm: signExtend(int64(w>>15&0x7F), 7) * 8, SF: true,
	}
}

func signExtend(v int64, bits uint) int64 {
	shift := 64 - bits
	return v << shift >> shift
}
