package insn

import "fmt"

// Encode produces the 32-bit A64 instruction word. It panics on operands
// that do not fit their encoding fields; the assembler validates ranges
// before calling it.
func (i Instr) Encode() uint32 {
	sf := uint32(0)
	if i.SF {
		sf = 1 << 31
	}
	rd := uint32(i.Rd & 31)
	rn := uint32(i.Rn & 31)
	rm := uint32(i.Rm & 31)
	ra := uint32(i.Ra & 31)

	switch i.Op {
	case OpMOVZ, OpMOVK, OpMOVN:
		var opc uint32
		switch i.Op {
		case OpMOVN:
			opc = 0
		case OpMOVZ:
			opc = 2
		case OpMOVK:
			opc = 3
		}
		if i.Shift%16 != 0 || i.Shift > 48 {
			panic(fmt.Sprintf("insn: bad move-wide shift %d", i.Shift))
		}
		return sf | opc<<29 | 0x25<<23 | uint32(i.Shift/16)<<21 | uint32(uint16(i.Imm))<<5 | rd

	case OpADR, OpADRP:
		op := uint32(0)
		if i.Op == OpADRP {
			op = 1 << 31
		}
		off := i.Imm
		if off < -(1<<20) || off >= 1<<20 {
			panic(fmt.Sprintf("insn: ADR offset %d out of range", off))
		}
		u := uint32(off) & 0x1FFFFF
		return op | (u&3)<<29 | 0x10<<24 | (u>>2)<<5 | rd

	case OpADDi, OpSUBi:
		op := uint32(0)
		if i.Op == OpSUBi {
			op = 1 << 30
		}
		sh := uint32(0)
		if i.Shift == 12 {
			sh = 1 << 22
		} else if i.Shift != 0 {
			panic("insn: ADDi/SUBi shift must be 0 or 12")
		}
		if i.Imm < 0 || i.Imm > 0xFFF {
			panic(fmt.Sprintf("insn: imm12 %d out of range", i.Imm))
		}
		return sf | op | 0x22<<23 | sh | uint32(i.Imm)<<10 | rn<<5 | rd

	case OpBFM, OpUBFM, OpSBFM:
		var opc uint32
		switch i.Op {
		case OpSBFM:
			opc = 0
		case OpBFM:
			opc = 1
		case OpUBFM:
			opc = 2
		}
		n := sf >> 9 // N (bit 22) = sf for our 64/32-bit forms
		return sf | opc<<29 | 0x26<<23 | n | uint32(i.ImmR&63)<<16 | uint32(i.ImmS&63)<<10 | rn<<5 | rd

	case OpANDr, OpORRr, OpEORr, OpANDSr:
		var opc uint32
		switch i.Op {
		case OpANDr:
			opc = 0
		case OpORRr:
			opc = 1
		case OpEORr:
			opc = 2
		case OpANDSr:
			opc = 3
		}
		return sf | opc<<29 | 0x0A<<24 | rm<<16 | uint32(i.Shift&63)<<10 | rn<<5 | rd

	case OpADDr, OpSUBr, OpSUBSr:
		var opS uint32
		switch i.Op {
		case OpADDr:
			opS = 0
		case OpSUBr:
			opS = 1 << 30
		case OpSUBSr:
			opS = 1<<30 | 1<<29
		}
		return sf | opS | 0x0B<<24 | rm<<16 | uint32(i.Shift&63)<<10 | rn<<5 | rd

	case OpMADD:
		return sf | 0xD8<<21 | rm<<16 | ra<<10 | rn<<5 | rd

	case OpUDIV:
		return sf | 0xD6<<21 | rm<<16 | 0x2<<10 | rn<<5 | rd
	case OpLSLV:
		return sf | 0xD6<<21 | rm<<16 | 0x8<<10 | rn<<5 | rd
	case OpLSRV:
		return sf | 0xD6<<21 | rm<<16 | 0x9<<10 | rn<<5 | rd

	case OpCSEL:
		return sf | 0xD4<<21 | rm<<16 | uint32(i.Cond&15)<<12 | rn<<5 | rd

	case OpLDR, OpSTR:
		opc := uint32(0)
		if i.Op == OpLDR {
			opc = 1 << 22
		}
		if i.Imm < 0 || i.Imm > 32760 || i.Imm%8 != 0 {
			panic(fmt.Sprintf("insn: LDR/STR offset %d invalid", i.Imm))
		}
		return 0xF9000000 | opc | uint32(i.Imm/8)<<10 | rn<<5 | rd

	case OpLDRW, OpSTRW:
		opc := uint32(0)
		if i.Op == OpLDRW {
			opc = 1 << 22
		}
		if i.Imm < 0 || i.Imm > 16380 || i.Imm%4 != 0 {
			panic(fmt.Sprintf("insn: LDRW/STRW offset %d invalid", i.Imm))
		}
		return 0xB9000000 | opc | uint32(i.Imm/4)<<10 | rn<<5 | rd

	case OpLDRB, OpSTRB:
		opc := uint32(0)
		if i.Op == OpLDRB {
			opc = 1 << 22
		}
		if i.Imm < 0 || i.Imm > 4095 {
			panic(fmt.Sprintf("insn: LDRB/STRB offset %d invalid", i.Imm))
		}
		return 0x39000000 | opc | uint32(i.Imm)<<10 | rn<<5 | rd

	case OpLDRpost:
		return 0xF8400400 | simm9(i.Imm)<<12 | rn<<5 | rd
	case OpSTRpre:
		return 0xF8000C00 | simm9(i.Imm)<<12 | rn<<5 | rd

	case OpLDP, OpSTP, OpLDPpost, OpSTPpre:
		var base uint32
		switch i.Op {
		case OpSTP:
			base = 0xA9000000
		case OpLDP:
			base = 0xA9400000
		case OpSTPpre:
			base = 0xA9800000
		case OpLDPpost:
			base = 0xA8C00000
		}
		if i.Imm%8 != 0 || i.Imm < -512 || i.Imm > 504 {
			panic(fmt.Sprintf("insn: LDP/STP offset %d invalid", i.Imm))
		}
		return base | (uint32(i.Imm/8)&0x7F)<<15 | rm<<10 | rn<<5 | rd

	case OpB, OpBL:
		op := uint32(0x14000000)
		if i.Op == OpBL {
			op = 0x94000000
		}
		return op | brOff(i.Imm, 26)

	case OpBcond:
		return 0x54000000 | brOff(i.Imm, 19)<<5 | uint32(i.Cond&15)

	case OpCBZ, OpCBNZ:
		op := uint32(0)
		if i.Op == OpCBNZ {
			op = 1 << 24
		}
		return sf | 0x34000000 | op | brOff(i.Imm, 19)<<5 | rd

	case OpBR:
		return 0xD61F0000 | rn<<5
	case OpBLR:
		return 0xD63F0000 | rn<<5
	case OpRET:
		return 0xD65F0000 | rn<<5
	case OpRETAA:
		return 0xD65F0BFF
	case OpRETAB:
		return 0xD65F0FFF
	case OpBRAA:
		return 0xD71F0800 | rn<<5 | rm
	case OpBRAB:
		return 0xD71F0C00 | rn<<5 | rm
	case OpBLRAA:
		return 0xD73F0800 | rn<<5 | rm
	case OpBLRAB:
		return 0xD73F0C00 | rn<<5 | rm

	case OpPACIA, OpPACIB, OpPACDA, OpPACDB, OpAUTIA, OpAUTIB, OpAUTDA, OpAUTDB:
		var op3 uint32
		switch i.Op {
		case OpPACIA:
			op3 = 0
		case OpPACIB:
			op3 = 1
		case OpPACDA:
			op3 = 2
		case OpPACDB:
			op3 = 3
		case OpAUTIA:
			op3 = 4
		case OpAUTIB:
			op3 = 5
		case OpAUTDA:
			op3 = 6
		case OpAUTDB:
			op3 = 7
		}
		return 0xDAC10000 | op3<<10 | rn<<5 | rd

	case OpPACIZA, OpPACIZB, OpPACDZA, OpPACDZB, OpAUTIZA, OpAUTIZB, OpAUTDZA, OpAUTDZB:
		var idx uint32
		switch i.Op {
		case OpPACIZA:
			idx = 0
		case OpPACIZB:
			idx = 1
		case OpPACDZA:
			idx = 2
		case OpPACDZB:
			idx = 3
		case OpAUTIZA:
			idx = 4
		case OpAUTIZB:
			idx = 5
		case OpAUTDZA:
			idx = 6
		case OpAUTDZB:
			idx = 7
		}
		return 0xDAC10000 | (8+idx)<<10 | 31<<5 | rd

	case OpXPACI:
		return 0xDAC143E0 | rd
	case OpXPACD:
		return 0xDAC147E0 | rd

	case OpPACGA:
		return 0x9AC03000 | rm<<16 | rn<<5 | rd

	case OpNOP:
		return hintWord(0)
	case OpPACIA1716:
		return hintWord(8)
	case OpPACIB1716:
		return hintWord(10)
	case OpAUTIA1716:
		return hintWord(12)
	case OpAUTIB1716:
		return hintWord(14)
	case OpISB:
		return 0xD5033FDF

	case OpMSR:
		return 0xD5000000 | sysFields(i.Sys) | rd
	case OpMRS:
		return 0xD5000000 | 1<<21 | sysFields(i.Sys) | rd

	case OpSVC:
		return 0xD4000001 | uint32(uint16(i.Imm))<<5
	case OpHLT:
		return 0xD4400000 | uint32(uint16(i.Imm))<<5
	case OpERET:
		return 0xD69F03E0
	}
	panic(fmt.Sprintf("insn: cannot encode op %v", i.Op))
}

func hintWord(n uint32) uint32 { return 0xD503201F | n<<5 }

func sysFields(s SysReg) uint32 {
	op0 := uint32(s>>14) & 3
	op1 := uint32(s>>11) & 7
	crn := uint32(s>>7) & 15
	crm := uint32(s>>3) & 15
	op2 := uint32(s) & 7
	return op0<<19 | op1<<16 | crn<<12 | crm<<8 | op2<<5
}

func simm9(v int64) uint32 {
	if v < -256 || v > 255 {
		panic(fmt.Sprintf("insn: simm9 %d out of range", v))
	}
	return uint32(v) & 0x1FF
}

func brOff(byteOff int64, bits uint) uint32 {
	if byteOff%4 != 0 {
		panic(fmt.Sprintf("insn: branch offset %d not word aligned", byteOff))
	}
	w := byteOff / 4
	lim := int64(1) << (bits - 1)
	if w < -lim || w >= lim {
		panic(fmt.Sprintf("insn: branch offset %d out of range for imm%d", byteOff, bits))
	}
	return uint32(w) & (1<<bits - 1)
}
