package insn

// Op identifies an instruction mnemonic in the supported A64 subset.
type Op uint8

const (
	// OpInvalid is the zero Op; decoding an unknown word yields it.
	OpInvalid Op = iota

	// Data processing — immediate.
	OpMOVZ // move wide with zero
	OpMOVK // move wide, keep
	OpMOVN // move wide, NOT
	OpADR  // PC-relative address
	OpADRP // PC-relative page address
	OpADDi // add immediate (Rn/Rd may be SP)
	OpSUBi // subtract immediate (Rn/Rd may be SP)
	OpBFM  // bitfield move (BFI/BFXIL aliases)
	OpUBFM // unsigned bitfield move (LSL/LSR/UBFX aliases)
	OpSBFM // signed bitfield move

	// Data processing — register.
	OpADDr  // add shifted register
	OpSUBr  // subtract shifted register
	OpSUBSr // subtract shifted register, set flags (CMP alias)
	OpANDr  // bitwise AND
	OpORRr  // bitwise OR (MOV register alias)
	OpEORr  // bitwise exclusive OR
	OpANDSr // bitwise AND, set flags (TST alias)
	OpMADD  // multiply-add (MUL alias)
	OpUDIV  // unsigned divide
	OpLSLV  // logical shift left by register
	OpLSRV  // logical shift right by register
	OpCSEL  // conditional select

	// Loads and stores.
	OpLDR     // load 64-bit, unsigned scaled offset
	OpSTR     // store 64-bit, unsigned scaled offset
	OpLDRW    // load 32-bit, unsigned scaled offset
	OpSTRW    // store 32-bit, unsigned scaled offset
	OpLDRB    // load byte
	OpSTRB    // store byte
	OpLDRpost // load 64-bit, post-index
	OpSTRpre  // store 64-bit, pre-index
	OpLDP     // load pair, signed offset
	OpSTP     // store pair, signed offset
	OpLDPpost // load pair, post-index
	OpSTPpre  // store pair, pre-index

	// Branches.
	OpB     // unconditional branch
	OpBL    // branch with link
	OpBcond // conditional branch
	OpCBZ   // compare and branch if zero
	OpCBNZ  // compare and branch if non-zero
	OpBR    // branch to register
	OpBLR   // branch with link to register
	OpRET   // return

	// ARMv8.3-A pointer authentication.
	OpPACIA // sign instruction pointer, key IA
	OpPACIB
	OpPACDA // sign data pointer, key DA
	OpPACDB
	OpAUTIA // authenticate instruction pointer, key IA
	OpAUTIB
	OpAUTDA
	OpAUTDB
	OpPACIZA // sign with zero modifier (the Apple-vtable form, §7)
	OpPACIZB
	OpPACDZA
	OpPACDZB
	OpAUTIZA
	OpAUTIZB
	OpAUTDZA
	OpAUTDZB
	OpXPACI     // strip PAC from instruction pointer
	OpXPACD     // strip PAC from data pointer
	OpPACGA     // generic MAC
	OpBLRAA     // authenticated branch with link, key IA
	OpBLRAB     // authenticated branch with link, key IB
	OpBRAA      // authenticated branch, key IA
	OpBRAB      // authenticated branch, key IB
	OpRETAA     // authenticated return, key IA
	OpRETAB     // authenticated return, key IB
	OpPACIA1716 // NOP-space PACIA x17, x16 (backwards compatible)
	OpPACIB1716
	OpAUTIA1716
	OpAUTIB1716

	// System.
	OpMSR  // write system register
	OpMRS  // read system register
	OpSVC  // supervisor call
	OpERET // exception return
	OpNOP
	OpISB // instruction synchronisation barrier
	OpHLT // halt (simulator stop)

	numOps
)

var opNames = [numOps]string{
	OpInvalid: "<invalid>",
	OpMOVZ:    "movz", OpMOVK: "movk", OpMOVN: "movn",
	OpADR: "adr", OpADRP: "adrp",
	OpADDi: "add", OpSUBi: "sub",
	OpBFM: "bfm", OpUBFM: "ubfm", OpSBFM: "sbfm",
	OpADDr: "add", OpSUBr: "sub", OpSUBSr: "subs",
	OpANDr: "and", OpORRr: "orr", OpEORr: "eor", OpANDSr: "ands",
	OpMADD: "madd", OpUDIV: "udiv", OpLSLV: "lslv", OpLSRV: "lsrv",
	OpCSEL: "csel",
	OpLDR:  "ldr", OpSTR: "str", OpLDRW: "ldr(w)", OpSTRW: "str(w)",
	OpLDRB: "ldrb", OpSTRB: "strb",
	OpLDRpost: "ldr(post)", OpSTRpre: "str(pre)",
	OpLDP: "ldp", OpSTP: "stp", OpLDPpost: "ldp(post)", OpSTPpre: "stp(pre)",
	OpB: "b", OpBL: "bl", OpBcond: "b.cond", OpCBZ: "cbz", OpCBNZ: "cbnz",
	OpBR: "br", OpBLR: "blr", OpRET: "ret",
	OpPACIA: "pacia", OpPACIB: "pacib", OpPACDA: "pacda", OpPACDB: "pacdb",
	OpAUTIA: "autia", OpAUTIB: "autib", OpAUTDA: "autda", OpAUTDB: "autdb",
	OpPACIZA: "paciza", OpPACIZB: "pacizb", OpPACDZA: "pacdza", OpPACDZB: "pacdzb",
	OpAUTIZA: "autiza", OpAUTIZB: "autizb", OpAUTDZA: "autdza", OpAUTDZB: "autdzb",
	OpXPACI: "xpaci", OpXPACD: "xpacd", OpPACGA: "pacga",
	OpBLRAA: "blraa", OpBLRAB: "blrab", OpBRAA: "braa", OpBRAB: "brab",
	OpRETAA: "retaa", OpRETAB: "retab",
	OpPACIA1716: "pacia1716", OpPACIB1716: "pacib1716",
	OpAUTIA1716: "autia1716", OpAUTIB1716: "autib1716",
	OpMSR: "msr", OpMRS: "mrs", OpSVC: "svc", OpERET: "eret",
	OpNOP: "nop", OpISB: "isb", OpHLT: "hlt",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// IsPAuth reports whether the op is part of the ARMv8.3 PAuth extension.
func (o Op) IsPAuth() bool {
	switch o {
	case OpPACIA, OpPACIB, OpPACDA, OpPACDB,
		OpAUTIA, OpAUTIB, OpAUTDA, OpAUTDB,
		OpPACIZA, OpPACIZB, OpPACDZA, OpPACDZB,
		OpAUTIZA, OpAUTIZB, OpAUTDZA, OpAUTDZB,
		OpXPACI, OpXPACD, OpPACGA,
		OpBLRAA, OpBLRAB, OpBRAA, OpBRAB, OpRETAA, OpRETAB,
		OpPACIA1716, OpPACIB1716, OpAUTIA1716, OpAUTIB1716:
		return true
	}
	return false
}

// IsBranch reports whether the op redirects control flow.
func (o Op) IsBranch() bool {
	switch o {
	case OpB, OpBL, OpBcond, OpCBZ, OpCBNZ, OpBR, OpBLR, OpRET,
		OpBLRAA, OpBLRAB, OpBRAA, OpBRAB, OpRETAA, OpRETAB, OpERET:
		return true
	}
	return false
}

// Cond is an A64 condition code for B.cond and CSEL.
type Cond uint8

// Condition codes.
const (
	EQ Cond = iota
	NE
	CS
	CC
	MI
	PL
	VS
	VC
	HI
	LS
	GE
	LT
	GT
	LE
	AL
	NV
)

var condNames = [16]string{"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc", "hi", "ls", "ge", "lt", "gt", "le", "al", "nv"}

// String returns the condition mnemonic suffix.
func (c Cond) String() string { return condNames[c&15] }
