package insn

import "fmt"

// SysReg identifies an AArch64 system register by its packed
// (op0, op1, CRn, CRm, op2) encoding, as used in the MSR/MRS instruction
// words: op0 in bits 15:14, op1 in 13:11, CRn in 10:7, CRm in 6:3, op2 in
// 2:0.
type SysReg uint16

// sysreg packs an (op0, op1, CRn, CRm, op2) tuple.
func sysreg(op0, op1, crn, crm, op2 uint16) SysReg {
	return SysReg(op0&3)<<14 | SysReg(op1&7)<<11 | SysReg(crn&15)<<7 | SysReg(crm&15)<<3 | SysReg(op2&7)
}

// System registers used by the model. Encodings follow the ARM ARM.
var (
	// SCTLR_EL1 holds the EL1 system control bits, including the PAuth
	// enable bits EnIA/EnIB/EnDA/EnDB (§4.1: the static analyser rejects
	// code that could clear them).
	SCTLR_EL1 = sysreg(3, 0, 1, 0, 0)

	TTBR0_EL1 = sysreg(3, 0, 2, 0, 0)
	TTBR1_EL1 = sysreg(3, 0, 2, 0, 1)

	// PAuth key registers: each 128-bit key is a Hi/Lo register pair.
	APIAKeyLo_EL1 = sysreg(3, 0, 2, 1, 0)
	APIAKeyHi_EL1 = sysreg(3, 0, 2, 1, 1)
	APIBKeyLo_EL1 = sysreg(3, 0, 2, 1, 2)
	APIBKeyHi_EL1 = sysreg(3, 0, 2, 1, 3)
	APDAKeyLo_EL1 = sysreg(3, 0, 2, 2, 0)
	APDAKeyHi_EL1 = sysreg(3, 0, 2, 2, 1)
	APDBKeyLo_EL1 = sysreg(3, 0, 2, 2, 2)
	APDBKeyHi_EL1 = sysreg(3, 0, 2, 2, 3)
	APGAKeyLo_EL1 = sysreg(3, 0, 2, 3, 0)
	APGAKeyHi_EL1 = sysreg(3, 0, 2, 3, 1)

	SPSR_EL1 = sysreg(3, 0, 4, 0, 0)
	ELR_EL1  = sysreg(3, 0, 4, 0, 1)
	SP_EL0   = sysreg(3, 0, 4, 1, 0)

	ESR_EL1  = sysreg(3, 0, 5, 2, 0)
	FAR_EL1  = sysreg(3, 0, 6, 0, 0)
	VBAR_EL1 = sysreg(3, 0, 12, 0, 0)

	// CONTEXTIDR_EL1 is the side-effect-free register the paper's
	// PA-analogue writes in place of key registers on pre-8.3 hardware.
	CONTEXTIDR_EL1 = sysreg(3, 0, 13, 0, 1)
	TPIDR_EL1      = sysreg(3, 0, 13, 0, 4)

	// MPIDR_EL1 identifies the core (Aff0 carries the CPU number);
	// read-only, used by SMP guest code and the secondary boot path.
	MPIDR_EL1 = sysreg(3, 0, 0, 0, 5)
	// TPIDR_EL0 is the EL0 thread register; the model's SMP kernel
	// repurposes it as the per-CPU data base (see cpu.CPU.TPIDR0).
	TPIDR_EL0 = sysreg(3, 3, 13, 0, 2)

	// PMCCNTR_EL0 is the cycle counter, used by in-guest micro-benchmarks.
	PMCCNTR_EL0 = sysreg(3, 3, 9, 13, 0)
	CNTFRQ_EL0  = sysreg(3, 3, 14, 0, 0)
	CNTVCT_EL0  = sysreg(3, 3, 14, 0, 2)
)

// PAuthKeyRegs lists every PAuth key system register; the §4.1 static
// analysis rejects any kernel or module code containing an MRS from one of
// these.
var PAuthKeyRegs = []SysReg{
	APIAKeyLo_EL1, APIAKeyHi_EL1,
	APIBKeyLo_EL1, APIBKeyHi_EL1,
	APDAKeyLo_EL1, APDAKeyHi_EL1,
	APDBKeyLo_EL1, APDBKeyHi_EL1,
	APGAKeyLo_EL1, APGAKeyHi_EL1,
}

// IsPAuthKey reports whether r is one of the ten PAuth key registers.
func (r SysReg) IsPAuthKey() bool {
	for _, k := range PAuthKeyRegs {
		if r == k {
			return true
		}
	}
	return false
}

var sysRegNames = map[SysReg]string{
	SCTLR_EL1:      "SCTLR_EL1",
	TTBR0_EL1:      "TTBR0_EL1",
	TTBR1_EL1:      "TTBR1_EL1",
	APIAKeyLo_EL1:  "APIAKeyLo_EL1",
	APIAKeyHi_EL1:  "APIAKeyHi_EL1",
	APIBKeyLo_EL1:  "APIBKeyLo_EL1",
	APIBKeyHi_EL1:  "APIBKeyHi_EL1",
	APDAKeyLo_EL1:  "APDAKeyLo_EL1",
	APDAKeyHi_EL1:  "APDAKeyHi_EL1",
	APDBKeyLo_EL1:  "APDBKeyLo_EL1",
	APDBKeyHi_EL1:  "APDBKeyHi_EL1",
	APGAKeyLo_EL1:  "APGAKeyLo_EL1",
	APGAKeyHi_EL1:  "APGAKeyHi_EL1",
	SPSR_EL1:       "SPSR_EL1",
	ELR_EL1:        "ELR_EL1",
	SP_EL0:         "SP_EL0",
	ESR_EL1:        "ESR_EL1",
	FAR_EL1:        "FAR_EL1",
	VBAR_EL1:       "VBAR_EL1",
	CONTEXTIDR_EL1: "CONTEXTIDR_EL1",
	TPIDR_EL1:      "TPIDR_EL1",
	MPIDR_EL1:      "MPIDR_EL1",
	TPIDR_EL0:      "TPIDR_EL0",
	PMCCNTR_EL0:    "PMCCNTR_EL0",
	CNTFRQ_EL0:     "CNTFRQ_EL0",
	CNTVCT_EL0:     "CNTVCT_EL0",
}

// String returns the architectural name when known.
func (r SysReg) String() string {
	if n, ok := sysRegNames[r]; ok {
		return n
	}
	return fmt.Sprintf("S%d_%d_C%d_C%d_%d", r>>14&3, r>>11&7, r>>7&15, r>>3&15, r&7)
}

// SCTLR_EL1 PAuth enable bits (ARM ARM D13.2.113). The paper's verifier
// rejects writes that could clear these (§4.1).
const (
	SCTLREnIA = 1 << 31 // enable PACIA/AUTIA (key IA)
	SCTLREnIB = 1 << 30 // enable PACIB/AUTIB (key IB)
	SCTLREnDA = 1 << 27 // enable PACDA/AUTDA (key DA)
	SCTLREnDB = 1 << 13 // enable PACDB/AUTDB (key DB)

	// SCTLRPAuthAll is the mask of all four PAuth enable bits.
	SCTLRPAuthAll = SCTLREnIA | SCTLREnIB | SCTLREnDA | SCTLREnDB
)
