package insn

import "fmt"

// Instr is a decoded (or to-be-encoded) instruction. Field meaning depends
// on Op; the builder functions below construct canonical values, and
// Decode(Encode(i)) == i for every builder-produced instruction (verified
// by property tests).
type Instr struct {
	Op Op
	// Rd is the destination register (Rt for loads/stores).
	Rd Reg
	// Rn is the base or first source register.
	Rn Reg
	// Rm is the second source register (Rt2 for pair loads/stores, the
	// modifier register for BLRAA/BLRAB).
	Rm Reg
	// Ra is the addend register for MADD.
	Ra Reg
	// Imm is the immediate operand: a byte offset for memory and branch
	// instructions, the 16-bit immediate for MOVZ/MOVK/MOVN/SVC/HLT, the
	// 12-bit immediate for ADDi/SUBi.
	Imm int64
	// Shift is the left-shift applied to Imm (0/16/32/48 for move-wide,
	// 0/12 for ADDi/SUBi) or the shift amount for shifted-register ALU ops.
	Shift uint8
	// ImmR and ImmS are the raw bitfield-move controls for BFM/UBFM/SBFM.
	ImmR, ImmS uint8
	// Cond is the condition for Bcond and CSEL.
	Cond Cond
	// Sys is the system register for MSR/MRS.
	Sys SysReg
	// SF selects 64-bit (true) or 32-bit (false) operation where the
	// encoding has an sf bit. Builders default to 64-bit.
	SF bool
}

// Size is the size of every A64 instruction in bytes.
const Size = 4

// --- data processing, immediate ---

// MOVZ builds "movz xd, #imm16, lsl #shift" (shift ∈ {0,16,32,48}).
func MOVZ(rd Reg, imm16 uint16, shift uint8) Instr {
	return Instr{Op: OpMOVZ, Rd: rd, Rn: XZR, Rm: XZR, Ra: XZR, Imm: int64(imm16), Shift: shift, SF: true}
}

// MOVZW builds the 32-bit form "movz wd, #imm16" (shift ∈ {0,16}).
func MOVZW(rd Reg, imm16 uint16, shift uint8) Instr {
	i := MOVZ(rd, imm16, shift)
	i.SF = false
	return i
}

// MOVK builds "movk xd, #imm16, lsl #shift".
func MOVK(rd Reg, imm16 uint16, shift uint8) Instr {
	return Instr{Op: OpMOVK, Rd: rd, Rn: XZR, Rm: XZR, Ra: XZR, Imm: int64(imm16), Shift: shift, SF: true}
}

// MOVN builds "movn xd, #imm16, lsl #shift" (rd = ^(imm16<<shift)).
func MOVN(rd Reg, imm16 uint16, shift uint8) Instr {
	return Instr{Op: OpMOVN, Rd: rd, Rn: XZR, Rm: XZR, Ra: XZR, Imm: int64(imm16), Shift: shift, SF: true}
}

// ADR builds "adr xd, #off" with off a signed byte offset in ±1 MiB.
func ADR(rd Reg, off int64) Instr {
	return Instr{Op: OpADR, Rd: rd, Rn: XZR, Rm: XZR, Ra: XZR, Imm: off, SF: true}
}

// ADRP builds "adrp xd, #off" with off a signed 4 KiB-page offset.
func ADRP(rd Reg, pages int64) Instr {
	return Instr{Op: OpADRP, Rd: rd, Rn: XZR, Rm: XZR, Ra: XZR, Imm: pages, SF: true}
}

// ADDi builds "add xd, xn, #imm12" (rd/rn may be SP).
func ADDi(rd, rn Reg, imm12 uint16) Instr {
	return Instr{Op: OpADDi, Rd: rd, Rn: rn, Rm: XZR, Ra: XZR, Imm: int64(imm12 & 0xFFF), SF: true}
}

// SUBi builds "sub xd, xn, #imm12" (rd/rn may be SP).
func SUBi(rd, rn Reg, imm12 uint16) Instr {
	return Instr{Op: OpSUBi, Rd: rd, Rn: rn, Rm: XZR, Ra: XZR, Imm: int64(imm12 & 0xFFF), SF: true}
}

// MOVSP builds "mov xd, sp" / "mov sp, xn" (an ADD #0 alias, the only MOV
// form that can address SP). Listing 3 uses it because SP is not a valid
// BFI operand.
func MOVSP(rd, rn Reg) Instr { return ADDi(rd, rn, 0) }

// BFI builds "bfi xd, xn, #lsb, #width": insert the low width bits of xn
// into xd at lsb.
func BFI(rd, rn Reg, lsb, width uint8) Instr {
	return Instr{Op: OpBFM, Rd: rd, Rn: rn, Rm: XZR, Ra: XZR,
		ImmR: (64 - lsb) % 64, ImmS: width - 1, SF: true}
}

// UBFX builds "ubfx xd, xn, #lsb, #width": extract bits.
func UBFX(rd, rn Reg, lsb, width uint8) Instr {
	return Instr{Op: OpUBFM, Rd: rd, Rn: rn, Rm: XZR, Ra: XZR,
		ImmR: lsb, ImmS: lsb + width - 1, SF: true}
}

// LSLi builds "lsl xd, xn, #sh" (a UBFM alias).
func LSLi(rd, rn Reg, sh uint8) Instr {
	return Instr{Op: OpUBFM, Rd: rd, Rn: rn, Rm: XZR, Ra: XZR,
		ImmR: (64 - sh) % 64, ImmS: 63 - sh, SF: true}
}

// LSRi builds "lsr xd, xn, #sh" (a UBFM alias).
func LSRi(rd, rn Reg, sh uint8) Instr {
	return Instr{Op: OpUBFM, Rd: rd, Rn: rn, Rm: XZR, Ra: XZR,
		ImmR: sh, ImmS: 63, SF: true}
}

// --- data processing, register ---

func alu(op Op, rd, rn, rm Reg, shift uint8) Instr {
	return Instr{Op: op, Rd: rd, Rn: rn, Rm: rm, Ra: XZR, Shift: shift, SF: true}
}

// ADDr builds "add xd, xn, xm, lsl #shift".
func ADDr(rd, rn, rm Reg) Instr { return alu(OpADDr, rd, rn, rm, 0) }

// SUBr builds "sub xd, xn, xm".
func SUBr(rd, rn, rm Reg) Instr { return alu(OpSUBr, rd, rn, rm, 0) }

// SUBSr builds "subs xd, xn, xm" (CMP when rd is XZR).
func SUBSr(rd, rn, rm Reg) Instr { return alu(OpSUBSr, rd, rn, rm, 0) }

// CMP builds "cmp xn, xm".
func CMP(rn, rm Reg) Instr { return SUBSr(XZR, rn, rm) }

// ANDr builds "and xd, xn, xm".
func ANDr(rd, rn, rm Reg) Instr { return alu(OpANDr, rd, rn, rm, 0) }

// ORRr builds "orr xd, xn, xm, lsl #shift".
func ORRr(rd, rn, rm Reg, shift uint8) Instr { return alu(OpORRr, rd, rn, rm, shift) }

// EORr builds "eor xd, xn, xm".
func EORr(rd, rn, rm Reg) Instr { return alu(OpEORr, rd, rn, rm, 0) }

// ANDSr builds "ands xd, xn, xm" (TST when rd is XZR).
func ANDSr(rd, rn, rm Reg) Instr { return alu(OpANDSr, rd, rn, rm, 0) }

// MOVr builds "mov xd, xm" (an ORR-with-XZR alias; not valid for SP).
func MOVr(rd, rm Reg) Instr { return ORRr(rd, XZR, rm, 0) }

// MADD builds "madd xd, xn, xm, xa" (xd = xa + xn*xm).
func MADD(rd, rn, rm, ra Reg) Instr {
	return Instr{Op: OpMADD, Rd: rd, Rn: rn, Rm: rm, Ra: ra, SF: true}
}

// MUL builds "mul xd, xn, xm".
func MUL(rd, rn, rm Reg) Instr { return MADD(rd, rn, rm, XZR) }

// UDIV builds "udiv xd, xn, xm".
func UDIV(rd, rn, rm Reg) Instr { return alu(OpUDIV, rd, rn, rm, 0) }

// LSLV builds "lslv xd, xn, xm".
func LSLV(rd, rn, rm Reg) Instr { return alu(OpLSLV, rd, rn, rm, 0) }

// LSRV builds "lsrv xd, xn, xm".
func LSRV(rd, rn, rm Reg) Instr { return alu(OpLSRV, rd, rn, rm, 0) }

// CSEL builds "csel xd, xn, xm, cond".
func CSEL(rd, rn, rm Reg, cond Cond) Instr {
	return Instr{Op: OpCSEL, Rd: rd, Rn: rn, Rm: rm, Ra: XZR, Cond: cond, SF: true}
}

// --- loads and stores ---

// LDR builds "ldr xt, [xn, #off]" with off a multiple of 8 in [0, 32760].
func LDR(rt, rn Reg, off uint16) Instr {
	return Instr{Op: OpLDR, Rd: rt, Rn: rn, Rm: XZR, Ra: XZR, Imm: int64(off), SF: true}
}

// STR builds "str xt, [xn, #off]".
func STR(rt, rn Reg, off uint16) Instr {
	return Instr{Op: OpSTR, Rd: rt, Rn: rn, Rm: XZR, Ra: XZR, Imm: int64(off), SF: true}
}

// LDRW builds "ldr wt, [xn, #off]" with off a multiple of 4.
func LDRW(rt, rn Reg, off uint16) Instr {
	return Instr{Op: OpLDRW, Rd: rt, Rn: rn, Rm: XZR, Ra: XZR, Imm: int64(off)}
}

// STRW builds "str wt, [xn, #off]".
func STRW(rt, rn Reg, off uint16) Instr {
	return Instr{Op: OpSTRW, Rd: rt, Rn: rn, Rm: XZR, Ra: XZR, Imm: int64(off)}
}

// LDRB builds "ldrb wt, [xn, #off]".
func LDRB(rt, rn Reg, off uint16) Instr {
	return Instr{Op: OpLDRB, Rd: rt, Rn: rn, Rm: XZR, Ra: XZR, Imm: int64(off)}
}

// STRB builds "strb wt, [xn, #off]".
func STRB(rt, rn Reg, off uint16) Instr {
	return Instr{Op: OpSTRB, Rd: rt, Rn: rn, Rm: XZR, Ra: XZR, Imm: int64(off)}
}

// LDRpost builds "ldr xt, [xn], #simm9" (post-indexed).
func LDRpost(rt, rn Reg, simm9 int16) Instr {
	return Instr{Op: OpLDRpost, Rd: rt, Rn: rn, Rm: XZR, Ra: XZR, Imm: int64(simm9), SF: true}
}

// STRpre builds "str xt, [xn, #simm9]!" (pre-indexed).
func STRpre(rt, rn Reg, simm9 int16) Instr {
	return Instr{Op: OpSTRpre, Rd: rt, Rn: rn, Rm: XZR, Ra: XZR, Imm: int64(simm9), SF: true}
}

// LDP builds "ldp xt, xt2, [xn, #off]" with off a multiple of 8 in ±504.
func LDP(rt, rt2, rn Reg, off int16) Instr {
	return Instr{Op: OpLDP, Rd: rt, Rn: rn, Rm: rt2, Ra: XZR, Imm: int64(off), SF: true}
}

// STP builds "stp xt, xt2, [xn, #off]".
func STP(rt, rt2, rn Reg, off int16) Instr {
	return Instr{Op: OpSTP, Rd: rt, Rn: rn, Rm: rt2, Ra: XZR, Imm: int64(off), SF: true}
}

// LDPpost builds "ldp xt, xt2, [xn], #off" — the canonical epilogue form of
// Listing 1: "ldp fp, lr, [sp], #16".
func LDPpost(rt, rt2, rn Reg, off int16) Instr {
	return Instr{Op: OpLDPpost, Rd: rt, Rn: rn, Rm: rt2, Ra: XZR, Imm: int64(off), SF: true}
}

// STPpre builds "stp xt, xt2, [xn, #off]!" — the canonical prologue form of
// Listing 1: "stp fp, lr, [sp, #-16]!".
func STPpre(rt, rt2, rn Reg, off int16) Instr {
	return Instr{Op: OpSTPpre, Rd: rt, Rn: rn, Rm: rt2, Ra: XZR, Imm: int64(off), SF: true}
}

// --- branches ---

// B builds "b #off" with off a signed byte offset (multiple of 4).
func B(off int64) Instr {
	return Instr{Op: OpB, Rd: XZR, Rn: XZR, Rm: XZR, Ra: XZR, Imm: off, SF: true}
}

// BL builds "bl #off".
func BL(off int64) Instr {
	return Instr{Op: OpBL, Rd: XZR, Rn: XZR, Rm: XZR, Ra: XZR, Imm: off, SF: true}
}

// Bcond builds "b.cond #off".
func Bcond(c Cond, off int64) Instr {
	return Instr{Op: OpBcond, Rd: XZR, Rn: XZR, Rm: XZR, Ra: XZR, Imm: off, Cond: c, SF: true}
}

// CBZ builds "cbz xt, #off".
func CBZ(rt Reg, off int64) Instr {
	return Instr{Op: OpCBZ, Rd: rt, Rn: XZR, Rm: XZR, Ra: XZR, Imm: off, SF: true}
}

// CBNZ builds "cbnz xt, #off".
func CBNZ(rt Reg, off int64) Instr {
	return Instr{Op: OpCBNZ, Rd: rt, Rn: XZR, Rm: XZR, Ra: XZR, Imm: off, SF: true}
}

// BR builds "br xn".
func BR(rn Reg) Instr {
	return Instr{Op: OpBR, Rd: XZR, Rn: rn, Rm: XZR, Ra: XZR, SF: true}
}

// BLR builds "blr xn".
func BLR(rn Reg) Instr {
	return Instr{Op: OpBLR, Rd: XZR, Rn: rn, Rm: XZR, Ra: XZR, SF: true}
}

// RET builds "ret" (returns to x30).
func RET() Instr { return RETr(LR) }

// RETr builds "ret xn".
func RETr(rn Reg) Instr {
	return Instr{Op: OpRET, Rd: XZR, Rn: rn, Rm: XZR, Ra: XZR, SF: true}
}

// --- pointer authentication ---

func pauth2(op Op, rd, rn Reg) Instr {
	return Instr{Op: op, Rd: rd, Rn: rn, Rm: XZR, Ra: XZR, SF: true}
}

// PACIA builds "pacia xd, xn": sign xd with key IA, modifier xn.
func PACIA(rd, rn Reg) Instr { return pauth2(OpPACIA, rd, rn) }

// PACIB builds "pacib xd, xn".
func PACIB(rd, rn Reg) Instr { return pauth2(OpPACIB, rd, rn) }

// PACDA builds "pacda xd, xn".
func PACDA(rd, rn Reg) Instr { return pauth2(OpPACDA, rd, rn) }

// PACDB builds "pacdb xd, xn".
func PACDB(rd, rn Reg) Instr { return pauth2(OpPACDB, rd, rn) }

// AUTIA builds "autia xd, xn": authenticate xd with key IA, modifier xn.
func AUTIA(rd, rn Reg) Instr { return pauth2(OpAUTIA, rd, rn) }

// AUTIB builds "autib xd, xn".
func AUTIB(rd, rn Reg) Instr { return pauth2(OpAUTIB, rd, rn) }

// AUTDA builds "autda xd, xn".
func AUTDA(rd, rn Reg) Instr { return pauth2(OpAUTDA, rd, rn) }

// AUTDB builds "autdb xd, xn".
func AUTDB(rd, rn Reg) Instr { return pauth2(OpAUTDB, rd, rn) }

// PACIZA builds "paciza xd": sign with key IA and a zero modifier.
func PACIZA(rd Reg) Instr { return pauth2(OpPACIZA, rd, XZR) }

// PACIZB builds "pacizb xd".
func PACIZB(rd Reg) Instr { return pauth2(OpPACIZB, rd, XZR) }

// PACDZA builds "pacdza xd".
func PACDZA(rd Reg) Instr { return pauth2(OpPACDZA, rd, XZR) }

// PACDZB builds "pacdzb xd": the zero-modifier data signing the §7
// Apple-scheme ablation uses.
func PACDZB(rd Reg) Instr { return pauth2(OpPACDZB, rd, XZR) }

// AUTIZA builds "autiza xd".
func AUTIZA(rd Reg) Instr { return pauth2(OpAUTIZA, rd, XZR) }

// AUTIZB builds "autizb xd".
func AUTIZB(rd Reg) Instr { return pauth2(OpAUTIZB, rd, XZR) }

// AUTDZA builds "autdza xd".
func AUTDZA(rd Reg) Instr { return pauth2(OpAUTDZA, rd, XZR) }

// AUTDZB builds "autdzb xd".
func AUTDZB(rd Reg) Instr { return pauth2(OpAUTDZB, rd, XZR) }

// XPACI builds "xpaci xd": strip the PAC without authenticating.
func XPACI(rd Reg) Instr { return pauth2(OpXPACI, rd, XZR) }

// XPACD builds "xpacd xd".
func XPACD(rd Reg) Instr { return pauth2(OpXPACD, rd, XZR) }

// PACGA builds "pacga xd, xn, xm": generic MAC of xn with modifier xm.
func PACGA(rd, rn, rm Reg) Instr {
	return Instr{Op: OpPACGA, Rd: rd, Rn: rn, Rm: rm, Ra: XZR, SF: true}
}

// BLRAA builds "blraa xn, xm": authenticated call via key IA.
func BLRAA(rn, rm Reg) Instr {
	return Instr{Op: OpBLRAA, Rd: XZR, Rn: rn, Rm: rm, Ra: XZR, SF: true}
}

// BLRAB builds "blrab xn, xm": authenticated call via key IB. The paper
// notes a compiler could fuse PACIB+BLR into this form (§4.3).
func BLRAB(rn, rm Reg) Instr {
	return Instr{Op: OpBLRAB, Rd: XZR, Rn: rn, Rm: rm, Ra: XZR, SF: true}
}

// BRAA builds "braa xn, xm".
func BRAA(rn, rm Reg) Instr {
	return Instr{Op: OpBRAA, Rd: XZR, Rn: rn, Rm: rm, Ra: XZR, SF: true}
}

// BRAB builds "brab xn, xm".
func BRAB(rn, rm Reg) Instr {
	return Instr{Op: OpBRAB, Rd: XZR, Rn: rn, Rm: rm, Ra: XZR, SF: true}
}

// RETAA builds "retaa": authenticated return via key IA, modifier SP.
func RETAA() Instr {
	return Instr{Op: OpRETAA, Rd: XZR, Rn: LR, Rm: XZR, Ra: XZR, SF: true}
}

// RETAB builds "retab".
func RETAB() Instr {
	return Instr{Op: OpRETAB, Rd: XZR, Rn: LR, Rm: XZR, Ra: XZR, SF: true}
}

func hint(op Op) Instr {
	return Instr{Op: op, Rd: XZR, Rn: XZR, Rm: XZR, Ra: XZR, SF: true}
}

// PACIA1716 builds the NOP-space "pacia1716" (sign x17 with modifier x16),
// which executes as NOP on pre-ARMv8.3 cores — the paper's backwards-
// compatibility mechanism (§5.5).
func PACIA1716() Instr { return hint(OpPACIA1716) }

// PACIB1716 builds "pacib1716".
func PACIB1716() Instr { return hint(OpPACIB1716) }

// AUTIA1716 builds "autia1716".
func AUTIA1716() Instr { return hint(OpAUTIA1716) }

// AUTIB1716 builds "autib1716".
func AUTIB1716() Instr { return hint(OpAUTIB1716) }

// --- system ---

// MSR builds "msr sysreg, xt".
func MSR(sys SysReg, rt Reg) Instr {
	return Instr{Op: OpMSR, Rd: rt, Rn: XZR, Rm: XZR, Ra: XZR, Sys: sys, SF: true}
}

// MRS builds "mrs xt, sysreg".
func MRS(rt Reg, sys SysReg) Instr {
	return Instr{Op: OpMRS, Rd: rt, Rn: XZR, Rm: XZR, Ra: XZR, Sys: sys, SF: true}
}

// SVC builds "svc #imm16" (supervisor call).
func SVC(imm16 uint16) Instr {
	return Instr{Op: OpSVC, Rd: XZR, Rn: XZR, Rm: XZR, Ra: XZR, Imm: int64(imm16), SF: true}
}

// ERET builds "eret".
func ERET() Instr { return hint(OpERET) }

// NOP builds "nop".
func NOP() Instr { return hint(OpNOP) }

// ISB builds "isb".
func ISB() Instr { return hint(OpISB) }

// HLT builds "hlt #imm16", used by the simulator as a stop/exit marker.
func HLT(imm16 uint16) Instr {
	return Instr{Op: OpHLT, Rd: XZR, Rn: XZR, Rm: XZR, Ra: XZR, Imm: int64(imm16), SF: true}
}

// MOVImm64 emits the shortest MOVZ/MOVK sequence materialising a 64-bit
// constant into rd. This is the sequence the bootloader uses to embed the
// kernel PAuth keys inside the XOM key-setter (§5.1).
func MOVImm64(rd Reg, v uint64) []Instr {
	var out []Instr
	for sh := uint8(0); sh < 64; sh += 16 {
		chunk := uint16(v >> sh)
		if chunk == 0 {
			continue
		}
		if len(out) == 0 {
			out = append(out, MOVZ(rd, chunk, sh))
		} else {
			out = append(out, MOVK(rd, chunk, sh))
		}
	}
	if len(out) == 0 {
		out = append(out, MOVZ(rd, 0, 0))
	}
	return out
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpMOVZ, OpMOVK, OpMOVN:
		w := "x"
		if !i.SF {
			w = "w"
		}
		if i.Shift != 0 {
			return fmt.Sprintf("%s %s%d, #%#x, lsl #%d", i.Op, w, i.Rd, uint16(i.Imm), i.Shift)
		}
		return fmt.Sprintf("%s %s%d, #%#x", i.Op, w, i.Rd, uint16(i.Imm))
	case OpADR:
		return fmt.Sprintf("adr x%d, #%d", i.Rd, i.Imm)
	case OpADRP:
		return fmt.Sprintf("adrp x%d, #%d", i.Rd, i.Imm*4096)
	case OpADDi, OpSUBi:
		return fmt.Sprintf("%s %s, %s, #%d", i.Op, spName(i.Rd), spName(i.Rn), i.Imm)
	case OpBFM, OpUBFM, OpSBFM:
		return fmt.Sprintf("%s x%d, x%d, #%d, #%d", i.Op, i.Rd, i.Rn, i.ImmR, i.ImmS)
	case OpADDr, OpSUBr, OpSUBSr, OpANDr, OpORRr, OpEORr, OpANDSr, OpUDIV, OpLSLV, OpLSRV:
		if i.Shift != 0 {
			return fmt.Sprintf("%s x%d, x%d, x%d, lsl #%d", i.Op, i.Rd, i.Rn, i.Rm, i.Shift)
		}
		return fmt.Sprintf("%s x%d, x%d, x%d", i.Op, i.Rd, i.Rn, i.Rm)
	case OpMADD:
		return fmt.Sprintf("madd x%d, x%d, x%d, x%d", i.Rd, i.Rn, i.Rm, i.Ra)
	case OpCSEL:
		return fmt.Sprintf("csel x%d, x%d, x%d, %s", i.Rd, i.Rn, i.Rm, i.Cond)
	case OpLDR, OpSTR, OpLDRW, OpSTRW, OpLDRB, OpSTRB:
		return fmt.Sprintf("%s x%d, [%s, #%d]", i.Op, i.Rd, spName(i.Rn), i.Imm)
	case OpLDRpost:
		return fmt.Sprintf("ldr x%d, [%s], #%d", i.Rd, spName(i.Rn), i.Imm)
	case OpSTRpre:
		return fmt.Sprintf("str x%d, [%s, #%d]!", i.Rd, spName(i.Rn), i.Imm)
	case OpLDP, OpSTP:
		return fmt.Sprintf("%s x%d, x%d, [%s, #%d]", i.Op, i.Rd, i.Rm, spName(i.Rn), i.Imm)
	case OpLDPpost:
		return fmt.Sprintf("ldp x%d, x%d, [%s], #%d", i.Rd, i.Rm, spName(i.Rn), i.Imm)
	case OpSTPpre:
		return fmt.Sprintf("stp x%d, x%d, [%s, #%d]!", i.Rd, i.Rm, spName(i.Rn), i.Imm)
	case OpB, OpBL:
		return fmt.Sprintf("%s #%d", i.Op, i.Imm)
	case OpBcond:
		return fmt.Sprintf("b.%s #%d", i.Cond, i.Imm)
	case OpCBZ, OpCBNZ:
		return fmt.Sprintf("%s x%d, #%d", i.Op, i.Rd, i.Imm)
	case OpBR, OpBLR, OpRET:
		return fmt.Sprintf("%s x%d", i.Op, i.Rn)
	case OpPACIA, OpPACIB, OpPACDA, OpPACDB, OpAUTIA, OpAUTIB, OpAUTDA, OpAUTDB:
		return fmt.Sprintf("%s x%d, %s", i.Op, i.Rd, spName(i.Rn))
	case OpPACIZA, OpPACIZB, OpPACDZA, OpPACDZB,
		OpAUTIZA, OpAUTIZB, OpAUTDZA, OpAUTDZB, OpXPACI, OpXPACD:
		return fmt.Sprintf("%s x%d", i.Op, i.Rd)
	case OpPACGA:
		return fmt.Sprintf("pacga x%d, x%d, x%d", i.Rd, i.Rn, i.Rm)
	case OpBLRAA, OpBLRAB, OpBRAA, OpBRAB:
		return fmt.Sprintf("%s x%d, x%d", i.Op, i.Rn, i.Rm)
	case OpMSR:
		return fmt.Sprintf("msr %s, x%d", i.Sys, i.Rd)
	case OpMRS:
		return fmt.Sprintf("mrs x%d, %s", i.Rd, i.Sys)
	case OpSVC:
		return fmt.Sprintf("svc #%#x", uint16(i.Imm))
	case OpHLT:
		return fmt.Sprintf("hlt #%#x", uint16(i.Imm))
	default:
		return i.Op.String()
	}
}

func spName(r Reg) string {
	if r == SP {
		return "sp"
	}
	return fmt.Sprintf("x%d", r)
}
