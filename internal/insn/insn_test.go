package insn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestGoldenWords pins encodings against well-known A64 words (as emitted
// by binutils/LLVM for the same assembly).
func TestGoldenWords(t *testing.T) {
	cases := []struct {
		name string
		i    Instr
		want uint32
	}{
		{"nop", NOP(), 0xD503201F},
		{"isb", ISB(), 0xD5033FDF},
		{"ret", RET(), 0xD65F03C0},
		{"eret", ERET(), 0xD69F03E0},
		{"svc #0", SVC(0), 0xD4000001},
		{"hlt #0", HLT(0), 0xD4400000},
		{"movz x0, #1", MOVZ(X0, 1, 0), 0xD2800020},
		{"movz w0, #1", MOVZW(X0, 1, 0), 0x52800020},
		{"movk x0, #2, lsl #16", MOVK(X0, 2, 16), 0xF2A00040},
		{"mov x0, x1", MOVr(X0, X1), 0xAA0103E0},
		{"add x0, x0, #1", ADDi(X0, X0, 1), 0x91000400},
		{"sub sp, sp, #16", SUBi(SP, SP, 16), 0xD10043FF},
		{"add x0, x1, x2", ADDr(X0, X1, X2), 0x8B020020},
		{"sub x0, x1, x2", SUBr(X0, X1, X2), 0xCB020020},
		{"cmp x0, x1", CMP(X0, X1), 0xEB01001F},
		{"and x0, x1, x2", ANDr(X0, X1, X2), 0x8A020020},
		{"eor x0, x1, x2", EORr(X0, X1, X2), 0xCA020020},
		{"mul x0, x1, x2", MUL(X0, X1, X2), 0x9B027C20},
		{"udiv x0, x1, x2", UDIV(X0, X1, X2), 0x9AC20820},
		{"ldr x1, [x2, #16]", LDR(X1, X2, 16), 0xF9400841},
		{"str x1, [x2, #16]", STR(X1, X2, 16), 0xF9000841},
		{"stp x29, x30, [sp, #-16]!", STPpre(FP, LR, SP, -16), 0xA9BF7BFD},
		{"ldp x29, x30, [sp], #16", LDPpost(FP, LR, SP, 16), 0xA8C17BFD},
		{"b #4", B(4), 0x14000001},
		{"bl #0", BL(0), 0x94000000},
		{"b.eq #8", Bcond(EQ, 8), 0x54000040},
		{"cbz x0, #0", CBZ(X0, 0), 0xB4000000},
		{"br x3", BR(X3), 0xD61F0060},
		{"blr x3", BLR(X3), 0xD63F0060},
		{"pacia x17, x16", PACIA(X17, X16), 0xDAC10211},
		{"pacib x30, x16", PACIB(LR, IP0), 0xDAC1061E},
		{"autia x17, x16", AUTIA(X17, X16), 0xDAC11211},
		{"xpaci x5", XPACI(X5), 0xDAC143E5},
		{"xpacd x5", XPACD(X5), 0xDAC147E5},
		{"pacga x1, x2, x3", PACGA(X1, X2, X3), 0x9AC33041},
		{"retaa", RETAA(), 0xD65F0BFF},
		{"retab", RETAB(), 0xD65F0FFF},
		{"blraa x1, x2", BLRAA(X1, X2), 0xD73F0822},
		{"blrab x1, x2", BLRAB(X1, X2), 0xD73F0C22},
		{"pacia1716", PACIA1716(), 0xD503211F},
		{"pacib1716", PACIB1716(), 0xD503215F},
		{"autia1716", AUTIA1716(), 0xD503219F},
		{"autib1716", AUTIB1716(), 0xD50321DF},
		{"msr sctlr_el1, x0", MSR(SCTLR_EL1, X0), 0xD5181000},
		{"mrs x0, sctlr_el1", MRS(X0, SCTLR_EL1), 0xD5381000},
		{"mrs x1, apiakeylo_el1", MRS(X1, APIAKeyLo_EL1), 0xD5382101},
		{"msr apibkeyhi_el1, x2", MSR(APIBKeyHi_EL1, X2), 0xD5182162},
	}
	for _, c := range cases {
		if got := c.i.Encode(); got != c.want {
			t.Errorf("%s: Encode = %#08x, want %#08x", c.name, got, c.want)
		}
		back := Decode(c.want)
		if back.Op == OpInvalid {
			t.Errorf("%s: Decode(%#08x) invalid", c.name, c.want)
		}
	}
}

// randInstr builds a random valid instruction using the public builders.
func randInstr(r *rand.Rand) Instr {
	reg := func() Reg { return Reg(r.Intn(31)) } // avoid 31 ambiguity in random tests
	off19 := func() int64 { return int64(r.Intn(1<<18)-1<<17) * 4 }
	switch r.Intn(40) {
	case 0:
		return MOVZ(reg(), uint16(r.Uint32()), uint8(r.Intn(4))*16)
	case 1:
		return MOVK(reg(), uint16(r.Uint32()), uint8(r.Intn(4))*16)
	case 2:
		return MOVN(reg(), uint16(r.Uint32()), uint8(r.Intn(4))*16)
	case 3:
		return ADR(reg(), int64(r.Intn(1<<20)-1<<19))
	case 4:
		return ADDi(reg(), reg(), uint16(r.Intn(1<<12)))
	case 5:
		return SUBi(reg(), reg(), uint16(r.Intn(1<<12)))
	case 6:
		return BFI(reg(), reg(), uint8(r.Intn(32)), uint8(1+r.Intn(32)))
	case 7:
		return UBFX(reg(), reg(), uint8(r.Intn(32)), uint8(1+r.Intn(32)))
	case 8:
		return ADDr(reg(), reg(), reg())
	case 9:
		return SUBr(reg(), reg(), reg())
	case 10:
		return ANDr(reg(), reg(), reg())
	case 11:
		return ORRr(reg(), reg(), reg(), uint8(r.Intn(64)))
	case 12:
		return EORr(reg(), reg(), reg())
	case 13:
		return MADD(reg(), reg(), reg(), reg())
	case 14:
		return UDIV(reg(), reg(), reg())
	case 15:
		return LSLV(reg(), reg(), reg())
	case 16:
		return CSEL(reg(), reg(), reg(), Cond(r.Intn(16)))
	case 17:
		return LDR(reg(), reg(), uint16(r.Intn(4096))&^7)
	case 18:
		return STR(reg(), reg(), uint16(r.Intn(4096))&^7)
	case 19:
		return LDRW(reg(), reg(), uint16(r.Intn(4096))&^3)
	case 20:
		return STRB(reg(), reg(), uint16(r.Intn(4096)))
	case 21:
		return LDRpost(reg(), reg(), int16(r.Intn(512)-256))
	case 22:
		return STRpre(reg(), reg(), int16(r.Intn(512)-256))
	case 23:
		return LDP(reg(), reg(), reg(), int16(r.Intn(128)-64)*8)
	case 24:
		return STP(reg(), reg(), reg(), int16(r.Intn(128)-64)*8)
	case 25:
		return LDPpost(reg(), reg(), reg(), int16(r.Intn(128)-64)*8)
	case 26:
		return STPpre(reg(), reg(), reg(), int16(r.Intn(128)-64)*8)
	case 27:
		return B(int64(r.Intn(1<<20)-1<<19) * 4)
	case 28:
		return BL(int64(r.Intn(1<<20)-1<<19) * 4)
	case 29:
		return Bcond(Cond(r.Intn(16)), off19())
	case 30:
		return CBZ(reg(), off19())
	case 31:
		return CBNZ(reg(), off19())
	case 32:
		return BR(reg())
	case 33:
		return BLR(reg())
	case 34:
		ops := []func(Reg, Reg) Instr{PACIA, PACIB, PACDA, PACDB, AUTIA, AUTIB, AUTDA, AUTDB}
		return ops[r.Intn(len(ops))](reg(), reg())
	case 35:
		return PACGA(reg(), reg(), reg())
	case 36:
		regs := []SysReg{SCTLR_EL1, APIAKeyLo_EL1, APIBKeyHi_EL1, APDBKeyLo_EL1,
			ELR_EL1, SPSR_EL1, VBAR_EL1, ESR_EL1, FAR_EL1, CONTEXTIDR_EL1, PMCCNTR_EL0}
		return MSR(regs[r.Intn(len(regs))], reg())
	case 37:
		regs := []SysReg{SCTLR_EL1, APGAKeyHi_EL1, TTBR1_EL1, CNTVCT_EL0, SP_EL0}
		return MRS(reg(), regs[r.Intn(len(regs))])
	case 38:
		return SVC(uint16(r.Uint32()))
	default:
		hints := []Instr{NOP(), ISB(), ERET(), RET(), RETAA(), RETAB(),
			PACIA1716(), PACIB1716(), AUTIA1716(), AUTIB1716(),
			BLRAA(reg(), reg()), BLRAB(reg(), reg()), BRAA(reg(), reg()), BRAB(reg(), reg()),
			PACIZA(reg()), PACIZB(reg()), PACDZA(reg()), PACDZB(reg()),
			AUTIZA(reg()), AUTIZB(reg()), AUTDZA(reg()), AUTDZB(reg()),
			XPACI(reg()), XPACD(reg()), HLT(uint16(r.Uint32()))}
		return hints[r.Intn(len(hints))]
	}
}

// TestEncodeDecodeRoundTrip is the core property: every builder-produced
// instruction survives Encode → Decode unchanged.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for n := 0; n < 20000; n++ {
		i := randInstr(r)
		w := i.Encode()
		back := Decode(w)
		if back != i {
			t.Fatalf("round trip failed:\n  in:  %+v (%s)\n  word %#08x\n  out: %+v (%s)",
				i, i, w, back, back)
		}
	}
}

// TestDecodeNeverPanics feeds random words through the decoder (the §4.1
// scanner runs over arbitrary module bytes, so decode must be total).
func TestDecodeNeverPanics(t *testing.T) {
	f := func(w uint32) bool {
		_ = Decode(w)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeEncodeIdempotent: any word that decodes to a valid instruction
// must re-encode to a word that decodes identically (encode∘decode is a
// projection onto the supported subset).
func TestDecodeEncodeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	checked := 0
	for n := 0; n < 200000 && checked < 20000; n++ {
		w := r.Uint32()
		i := Decode(w)
		if i.Op == OpInvalid {
			continue
		}
		// Skip words whose operand fields exceed builder ranges (e.g.
		// register 31 in contexts our builders avoid).
		var w2 uint32
		func() {
			defer func() { recover() }()
			w2 = i.Encode()
		}()
		if w2 == 0 {
			continue
		}
		if got := Decode(w2); got != i {
			t.Fatalf("decode∘encode not idempotent: %#08x -> %+v -> %#08x -> %+v", w, i, w2, got)
		}
		checked++
	}
	if checked < 1000 {
		t.Fatalf("only %d decodable words sampled; decoder too narrow?", checked)
	}
}

func TestMOVImm64(t *testing.T) {
	cases := []uint64{0, 1, 0xFFFF, 0x10000, 0xDEADBEEF, 0xFFFF_FFFF_FFFF_FFFF,
		0x0123_4567_89AB_CDEF, 0x8000_0000_0000_0000, 0x0000_FFFF_0000_0001}
	for _, v := range cases {
		seq := MOVImm64(X7, v)
		if len(seq) == 0 || len(seq) > 4 {
			t.Fatalf("MOVImm64(%#x): %d instructions", v, len(seq))
		}
		// Emulate the sequence.
		var got uint64
		for idx, ins := range seq {
			imm := uint64(uint16(ins.Imm)) << ins.Shift
			switch ins.Op {
			case OpMOVZ:
				if idx != 0 {
					t.Fatalf("MOVZ not first in sequence for %#x", v)
				}
				got = imm
			case OpMOVK:
				got = got&^(uint64(0xFFFF)<<ins.Shift) | imm
			default:
				t.Fatalf("unexpected op %v in MOVImm64 sequence", ins.Op)
			}
		}
		if got != v {
			t.Fatalf("MOVImm64(%#x) materialises %#x", v, got)
		}
	}
}

func TestMOVImm64Property(t *testing.T) {
	f := func(v uint64) bool {
		var got uint64
		for _, ins := range MOVImm64(X0, v) {
			imm := uint64(uint16(ins.Imm)) << ins.Shift
			if ins.Op == OpMOVZ {
				got = imm
			} else {
				got = got&^(uint64(0xFFFF)<<ins.Shift) | imm
			}
		}
		return got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSysRegPredicates(t *testing.T) {
	for _, k := range PAuthKeyRegs {
		if !k.IsPAuthKey() {
			t.Errorf("%s not recognised as PAuth key register", k)
		}
	}
	for _, nk := range []SysReg{SCTLR_EL1, ELR_EL1, CONTEXTIDR_EL1} {
		if nk.IsPAuthKey() {
			t.Errorf("%s misclassified as PAuth key register", nk)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpPACIB.IsPAuth() || !OpRETAB.IsPAuth() || !OpAUTIB1716.IsPAuth() {
		t.Error("PAuth ops not classified as PAuth")
	}
	if OpADDi.IsPAuth() || OpLDR.IsPAuth() {
		t.Error("non-PAuth ops classified as PAuth")
	}
	if !OpB.IsBranch() || !OpRETAA.IsBranch() || !OpERET.IsBranch() {
		t.Error("branch ops not classified as branches")
	}
	if OpMOVZ.IsBranch() {
		t.Error("MOVZ classified as branch")
	}
}

func TestDisasmSmoke(t *testing.T) {
	// Listing 3 prologue, as the paper prints it.
	seq := []Instr{
		ADR(IP0, -64),
		MOVSP(IP1, SP),
		BFI(IP0, IP1, 32, 32),
		PACIB(LR, IP0),
		STPpre(FP, LR, SP, -16),
	}
	for _, i := range seq {
		if s := i.String(); s == "" || s == "<invalid>" {
			t.Errorf("bad disassembly for %+v: %q", i, s)
		}
	}
	if got := RET().String(); got != "ret x30" {
		t.Errorf("RET disasm = %q", got)
	}
	if got := MSR(APIAKeyLo_EL1, X0).String(); got != "msr APIAKeyLo_EL1, x0" {
		t.Errorf("MSR disasm = %q", got)
	}
}

func TestRegString(t *testing.T) {
	if X0.String() != "x0" || X30.String() != "x30" {
		t.Error("register names wrong")
	}
	if !SP.Valid() || Reg(32).Valid() {
		t.Error("Valid() wrong")
	}
}

func TestEncodePanicsOnBadOperands(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad move shift", func() { MOVZ(X0, 1, 7).Encode() })
	mustPanic("branch misaligned", func() { B(2).Encode() })
	mustPanic("branch out of range", func() { Bcond(EQ, 1<<30).Encode() })
	mustPanic("ldr offset unscaled", func() { LDR(X0, X1, 9).Encode() })
	mustPanic("stp offset out of range", func() { STP(X0, X1, SP, 1024).Encode() })
	mustPanic("adr out of range", func() { ADR(X0, 1<<21).Encode() })
}

// TestDisasmTotal: every encodable op produces a non-empty, non-invalid
// disassembly string (the §4.1 scanner logs disassembly for rejections,
// so String must be total over the subset).
func TestDisasmTotal(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for n := 0; n < 5000; n++ {
		i := randInstr(r)
		s := i.String()
		if s == "" || s == "<invalid>" || s == "op?" {
			t.Fatalf("bad disassembly for %+v: %q", i, s)
		}
	}
}

// TestZFormGoldenWords pins the zero-modifier PAuth encodings.
func TestZFormGoldenWords(t *testing.T) {
	cases := []struct {
		i    Instr
		want uint32
	}{
		{PACIZA(X0), 0xDAC123E0},
		{PACIZB(X1), 0xDAC127E1},
		{PACDZA(X2), 0xDAC12BE2},
		{PACDZB(X3), 0xDAC12FE3},
		{AUTIZA(X4), 0xDAC133E4},
		{AUTIZB(X5), 0xDAC137E5},
		{AUTDZA(X6), 0xDAC13BE6},
		{AUTDZB(X7), 0xDAC13FE7},
	}
	for _, c := range cases {
		if got := c.i.Encode(); got != c.want {
			t.Errorf("%s: Encode = %#08x, want %#08x", c.i, got, c.want)
		}
		if back := Decode(c.want); back != c.i {
			t.Errorf("%s: Decode(%#08x) = %+v", c.i, c.want, back)
		}
		if !c.i.Op.IsPAuth() {
			t.Errorf("%s not classified as PAuth", c.i)
		}
	}
}
