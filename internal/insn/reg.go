// Package insn models the subset of the A64 instruction set used by the
// Camouflage reproduction: data-processing, loads/stores, branches, system
// instructions, and the ARMv8.3-A pointer-authentication instructions.
//
// Instructions are real 32-bit A64 words: the package provides an encoder,
// a decoder and a disassembler, and the two directions are verified to be
// mutual inverses by property-based tests. Working at the encoding level is
// what makes the paper's execute-only-memory argument meaningful — the
// kernel PAuth keys are embedded as MOVZ/MOVK immediates inside the key-
// setter function, and extracting them requires *reading* the code words,
// which XOM forbids (§4.1, §5.1).
package insn

import "fmt"

// Reg is an AArch64 general-purpose register number. Numbers 0..30 are
// X0..X30; number 31 encodes either XZR (the zero register) or SP (the
// stack pointer) depending on the instruction class, exactly as in A64.
type Reg uint8

// Register aliases used throughout the kernel model.
const (
	X0 Reg = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29
	X30

	// XZR is the zero register (reads as zero, writes discarded) in
	// instruction classes that interpret register 31 that way.
	XZR Reg = 31
	// SP is the stack pointer in instruction classes that interpret
	// register 31 that way (ADD/SUB immediate, loads/stores).
	SP Reg = 31

	// FP is the frame pointer (x29) of the AAPCS64 frame record.
	FP = X29
	// LR is the link register (x30) holding function return addresses.
	LR = X30
	// IP0 and IP1 are the intra-procedure-call scratch registers used by
	// the Listing-3 prologue to build the PAuth modifier.
	IP0 = X16
	IP1 = X17
)

// NumRegs is the number of encodable register numbers.
const NumRegs = 32

// String returns the X-form register name; register 31 prints as "xzr|sp"
// because the interpretation depends on the instruction.
func (r Reg) String() string {
	switch {
	case r < 31:
		return fmt.Sprintf("x%d", uint8(r))
	case r == 31:
		return "xzr|sp"
	}
	return fmt.Sprintf("reg?%d", uint8(r))
}

// Valid reports whether the register number is encodable.
func (r Reg) Valid() bool { return r < NumRegs }
