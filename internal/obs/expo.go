package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// inf64 stands in for the +Inf bucket bound: encoding/json rejects
// actual infinities, so snapshots carry MaxFloat64 and the Prometheus
// writer renders anything that large as the literal "+Inf".
var inf64 = math.MaxFloat64

// Inf64 returns the sentinel standing in for +Inf wherever a value
// must survive encoding/json (bucket bounds, parsed exposition).
func Inf64() float64 { return inf64 }

// WritePrometheus renders the whole registry in Prometheus text
// exposition format (version 0.0.4): every static counter family, then
// vec families, gauges and histograms, each preceded by its # HELP and
// # TYPE lines. Output is deterministic: static families appear in
// enum order, everything else in name order.
func WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	totals := CounterTotals()

	// Static counter families, grouped in enum order (IDs of one family
	// are contiguous by construction; emit HELP/TYPE at each first ID).
	prevFamily := ""
	for id := CounterID(0); id < NumCounters; id++ {
		m := &counterMetas[id]
		if m.family != prevFamily {
			writeHeader(bw, m.family, m.help, "counter")
			prevFamily = m.family
		}
		writeSample(bw, m.family, m.labels, strconv.FormatUint(totals[id], 10))
	}

	for _, v := range sortedVecs() {
		writeHeader(bw, v.name, v.help, "counter")
		for _, s := range v.snapshotCells() {
			writeSample(bw, v.name, s.labels, strconv.FormatUint(s.value, 10))
		}
	}

	for _, g := range sortedGauges() {
		writeHeader(bw, g.name, g.help, "gauge")
		writeSample(bw, g.name, "", formatFloat(g.fn()))
	}

	prevFamily = ""
	for _, h := range sortedHists() {
		if h.name != prevFamily {
			writeHeader(bw, h.name, h.help, "histogram")
			prevFamily = h.name
		}
		s := h.snapshot()
		for _, b := range s.Buckets {
			le := "+Inf"
			if b.LE < inf64 {
				le = formatFloat(b.LE)
			}
			labels := `le="` + le + `"`
			if h.labels != "" {
				labels = h.labels + "," + labels
			}
			writeSample(bw, h.name+"_bucket", labels, strconv.FormatUint(b.Count, 10))
		}
		writeSample(bw, h.name+"_sum", h.labels, formatFloat(s.SumSeconds))
		writeSample(bw, h.name+"_count", h.labels, strconv.FormatUint(s.Count, 10))
	}

	return bw.Flush()
}

func writeHeader(w *bufio.Writer, name, help, typ string) {
	w.WriteString("# HELP ")
	w.WriteString(name)
	w.WriteByte(' ')
	w.WriteString(help)
	w.WriteString("\n# TYPE ")
	w.WriteString(name)
	w.WriteByte(' ')
	w.WriteString(typ)
	w.WriteByte('\n')
}

func writeSample(w *bufio.Writer, name, labels, value string) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot is the JSON form of the registry, embedded in /v1/stats so
// fleet tooling gets the same numbers /metrics exposes without parsing
// text exposition. Counter keys are full sample names (family plus
// label set); map keys marshal sorted, so the document is
// deterministic for a fixed registry state.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// TakeSnapshot reads the whole registry.
func TakeSnapshot() Snapshot {
	totals := CounterTotals()
	s := Snapshot{
		Counters:   make(map[string]uint64, int(NumCounters)),
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	for id := CounterID(0); id < NumCounters; id++ {
		s.Counters[id.SampleName()] = totals[id]
	}
	for _, v := range sortedVecs() {
		for _, c := range v.snapshotCells() {
			s.Counters[v.name+"{"+c.labels+"}"] = c.value
		}
	}
	for _, g := range sortedGauges() {
		s.Gauges[g.name] = g.fn()
	}
	for _, h := range sortedHists() {
		s.Histograms[h.sampleName()] = h.snapshot()
	}
	return s
}
