package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestCounterMetasComplete pins that every CounterID has exposition
// metadata and that IDs sharing a family are contiguous (the writer
// emits HELP/TYPE at family changes only).
func TestCounterMetasComplete(t *testing.T) {
	seen := map[string]CounterID{}
	prev := ""
	for id := CounterID(0); id < NumCounters; id++ {
		m := counterMetas[id]
		if m.family == "" || m.help == "" {
			t.Fatalf("counter %d has incomplete metadata: %+v", id, m)
		}
		if !strings.HasPrefix(m.family, "camouflage_") || !strings.HasSuffix(m.family, "_total") {
			t.Errorf("counter family %q breaks the naming convention", m.family)
		}
		if first, ok := seen[m.family]; ok && m.family != prev {
			t.Errorf("family %q is not contiguous (first at %d, again at %d)", m.family, first, id)
		}
		if _, ok := seen[m.family]; !ok {
			seen[m.family] = id
		}
		prev = m.family
	}
}

// TestLocalFlush pins the hot-path contract: plain increments in a
// Local become visible in CounterTotal only after Flush, and Flush
// zeroes the cells.
func TestLocalFlush(t *testing.T) {
	before := CounterTotal(CTraceBuild)
	var l Local
	l.V[CTraceBuild] += 3
	if got := CounterTotal(CTraceBuild); got != before {
		t.Fatalf("unflushed increment visible: %d != %d", got, before)
	}
	l.Flush(5)
	if got := CounterTotal(CTraceBuild); got != before+3 {
		t.Fatalf("after flush: got %d, want %d", got, before+3)
	}
	if l.V[CTraceBuild] != 0 {
		t.Fatalf("flush did not zero the cell")
	}
}

func TestAddAndTotals(t *testing.T) {
	before := CounterTotals()
	Add(CPoolDrop, 2)
	Add(CPoolDrop, 1)
	after := CounterTotals()
	if d := after[CPoolDrop] - before[CPoolDrop]; d != 3 {
		t.Fatalf("CPoolDrop delta = %d, want 3", d)
	}
}

func TestSampleName(t *testing.T) {
	if got := CRetired.SampleName(); got != "camouflage_cpu_instructions_retired_total" {
		t.Fatalf("unlabeled sample name: %q", got)
	}
	want := `camouflage_pac_auths_total{key="GA"}`
	if got := CPACAuthGA.SampleName(); got != want {
		t.Fatalf("labeled sample name: %q, want %q", got, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("camouflage_test_hist_seconds", "Test histogram.", []float64{0.001, 1})
	h.Observe(500 * time.Microsecond) // bucket 0 (<= 1ms)
	h.Observe(500 * time.Millisecond) // bucket 1 (<= 1s)
	h.Observe(2 * time.Second)        // +Inf bucket
	s := h.snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	wantCum := []uint64{1, 2, 3}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.LE < inf64 {
		t.Fatalf("last bucket bound %v is not the +Inf sentinel", last.LE)
	}
	if s.SumSeconds < 2.5 || s.SumSeconds > 2.6 {
		t.Fatalf("sum = %v, want ~2.5005", s.SumSeconds)
	}
	// Idempotent by name: same pointer back, no reset.
	if h2 := NewHistogram("camouflage_test_hist_seconds", "x", nil); h2 != h {
		t.Fatalf("NewHistogram is not idempotent")
	}
}

func TestVecCells(t *testing.T) {
	v := NewVec("camouflage_test_vec_total", "Test vec.")
	if v2 := NewVec("camouflage_test_vec_total", "x"); v2 != v {
		t.Fatalf("NewVec is not idempotent")
	}
	c := v.Cell(`op="a"`)
	c.Add(2)
	if c2 := v.Cell(`op="a"`); c2 != c {
		t.Fatalf("Cell is not memoized")
	}
	v.Cell(`op="b"`).Add(1)
	cells := v.snapshotCells()
	if len(cells) != 2 || cells[0].labels != `op="a"` || cells[0].value != 2 {
		t.Fatalf("snapshotCells = %+v", cells)
	}
}

// TestWritePrometheus checks exposition shape: every counter family
// appears exactly once as HELP+TYPE, samples parse as "name value" or
// "name{labels} value", histograms end with _sum and _count.
func TestWritePrometheus(t *testing.T) {
	RegisterGauge("camouflage_test_gauge", "Test gauge.", func() float64 { return 42 })
	NewHistogramLabels("camouflage_test_labeled_seconds", "Labeled test histogram.",
		`shard="a"`, []float64{1}).Observe(time.Millisecond)
	NewHistogramLabels("camouflage_test_labeled_seconds", "Labeled test histogram.",
		`shard="b"`, []float64{1}).Observe(2 * time.Second)

	var b strings.Builder
	if err := WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, family := range []string{
		"camouflage_cpu_instructions_retired_total",
		"camouflage_cpu_trace_exits_total",
		"camouflage_mmu_stage2_walks_total",
		"camouflage_mem_cow_materializations_total",
		"camouflage_pac_auths_total",
		"camouflage_snapshot_pool_boots_total",
		"camouflage_server_queue_rejected_total",
	} {
		if n := strings.Count(out, "# HELP "+family+" "); n != 1 {
			t.Errorf("family %s: %d HELP lines, want 1", family, n)
		}
		if n := strings.Count(out, "# TYPE "+family+" counter"); n != 1 {
			t.Errorf("family %s: %d TYPE counter lines, want 1", family, n)
		}
	}
	if !strings.Contains(out, "camouflage_test_gauge 42\n") {
		t.Errorf("gauge sample missing")
	}
	if n := strings.Count(out, "# TYPE camouflage_test_labeled_seconds histogram"); n != 1 {
		t.Errorf("labeled histogram family emitted %d TYPE lines, want 1", n)
	}
	if !strings.Contains(out, `camouflage_test_labeled_seconds_bucket{shard="a",le="+Inf"} 1`) {
		t.Errorf("labeled +Inf bucket missing:\n%s", out)
	}
	if !strings.Contains(out, `camouflage_test_labeled_seconds_count{shard="b"} 1`) {
		t.Errorf("labeled _count missing")
	}
	// The PAC family must carry all five key labels.
	for _, key := range []string{"IA", "IB", "DA", "DB", "GA"} {
		if !strings.Contains(out, `camouflage_pac_auths_total{key="`+key+`"} `) {
			t.Errorf("PAC key %s sample missing", key)
		}
	}
}

// TestSnapshotJSON pins that the JSON embedding marshals (no +Inf
// leaks into encoding/json) and carries every static counter.
func TestSnapshotJSON(t *testing.T) {
	s := TakeSnapshot()
	if len(s.Counters) < int(NumCounters) {
		t.Fatalf("snapshot has %d counters, want >= %d", len(s.Counters), NumCounters)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if _, ok := back.Counters["camouflage_cpu_cycles_total"]; !ok {
		t.Fatalf("round-tripped snapshot lost the cycles counter")
	}
}

func TestRunTrace(t *testing.T) {
	r := BeginRun("test", "label-1")
	if r.ID() == "" {
		t.Fatal("empty run ID")
	}
	Add(CPoolHit, 7)
	r.Phase("phase-a", 5*time.Millisecond)
	r.Phase("phase-b", 0) // no deltas accrued
	r.End()

	tr, ok := RunTraceByID(r.ID())
	if !ok {
		t.Fatalf("run %s not retrievable", r.ID())
	}
	if !tr.Done || tr.Kind != "test" || tr.Label != "label-1" {
		t.Fatalf("trace header: %+v", tr)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(tr.Events))
	}
	if got := tr.Events[0].Counters[CPoolHit.SampleName()]; got != 7 {
		t.Fatalf("phase-a CPoolHit delta = %d, want 7", got)
	}
	if tr.Events[1].Counters[CPoolHit.SampleName()] != 0 {
		t.Fatalf("phase-b should carry no CPoolHit delta")
	}

	// Nil runs are inert.
	var nilRun *Run
	nilRun.Phase("x", 0)
	nilRun.End()
	if nilRun.ID() != "" || nilRun.Trace().ID != "" {
		t.Fatal("nil run is not inert")
	}

	if _, ok := RunTraceByID("run-does-not-exist"); ok {
		t.Fatal("lookup of unknown run succeeded")
	}
}

// TestRunStoreBounded pins the ring: old runs fall out after
// maxStoredRuns newer ones.
func TestRunStoreBounded(t *testing.T) {
	first := BeginRun("test", "evictee")
	for i := 0; i < maxStoredRuns; i++ {
		BeginRun("test", fmt.Sprintf("filler-%d", i)).End()
	}
	if _, ok := RunTraceByID(first.ID()); ok {
		t.Fatalf("run %s survived %d newer runs", first.ID(), maxStoredRuns)
	}
}

// TestConcurrentFlushAndScrape exercises flush/Add/scrape under the
// race detector.
func TestConcurrentFlushAndScrape(t *testing.T) {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var l Local
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			l.V[CTraceEnter]++
			l.Flush(i)
			Add(CPoolMiss, 1)
		}
	}()
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := WritePrometheus(&b); err != nil {
			t.Error(err)
		}
		TakeSnapshot()
	}
	close(stop)
	<-done
}
