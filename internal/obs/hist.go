package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets spans 100µs to 10s — wide enough for a queue
// wait, a COW fork (~tens of µs, lands in the first bucket) and a full
// build+verify+boot (~hundreds of ms) on the same scale.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram: observations are
// recorded in nanoseconds with atomic adds (cold paths only — nothing
// on the instruction loop observes a histogram) and exposed in seconds
// with cumulative Prometheus bucket semantics.
type Histogram struct {
	name, help string
	labels     string    // pre-rendered label set without braces ("" for none)
	bounds     []float64 // upper bounds in seconds, ascending

	counts []atomic.Uint64 // per-bucket (non-cumulative); len(bounds)+1, last is +Inf
	count  atomic.Uint64
	sumNs  atomic.Uint64
}

var (
	histMu sync.Mutex
	hists  = map[string]*Histogram{}
)

// NewHistogram returns the histogram of that name, creating it with
// the given bucket upper bounds (in seconds, ascending) on first use.
// Idempotent by name so package-level construction in multiple
// packages never double-registers.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return NewHistogramLabels(name, help, "", bounds)
}

// NewHistogramLabels is NewHistogram for a labeled member of a family:
// siblings share name and help and differ in their pre-rendered label
// set (no braces), e.g. `endpoint="/v1/experiments"`. Idempotent by
// name+labels.
func NewHistogramLabels(name, help, labels string, bounds []float64) *Histogram {
	histMu.Lock()
	defer histMu.Unlock()
	key := name
	if labels != "" {
		key = name + "{" + labels + "}"
	}
	if h, ok := hists[key]; ok {
		return h
	}
	h := &Histogram{
		name:   name,
		help:   help,
		labels: labels,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	hists[key] = h
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	sec := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, sec) // first bound >= sec
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(uint64(d.Nanoseconds()))
}

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0)) }

// Name returns the metric family name.
func (h *Histogram) Name() string { return h.name }

// sampleName returns the full sample identity (family plus label set),
// the key used by JSON snapshots and run-trace deltas.
func (h *Histogram) sampleName() string {
	if h.labels == "" {
		return h.name
	}
	return h.name + "{" + h.labels + "}"
}

// HistSnapshot is a point-in-time read of a histogram, used by the
// JSON stats embedding and the run-trace layer.
type HistSnapshot struct {
	Count      uint64        `json:"count"`
	SumSeconds float64       `json:"sum_seconds"`
	Buckets    []BucketCount `json:"buckets"`
}

// BucketCount is one cumulative bucket: observations <= LE.
type BucketCount struct {
	LE    float64 `json:"le"` // +Inf encoded as the largest float64
	Count uint64  `json:"count"`
}

// snapshot reads the histogram; buckets come back cumulative.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Count:      h.count.Load(),
		SumSeconds: float64(h.sumNs.Load()) / 1e9,
		Buckets:    make([]BucketCount, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := inf64
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = BucketCount{LE: le, Count: cum}
	}
	return s
}

// sortedHists snapshots the histogram table in family order, labeled
// siblings adjacent in label order (so the exposition writer can emit
// HELP/TYPE once per family).
func sortedHists() []*Histogram {
	histMu.Lock()
	defer histMu.Unlock()
	out := make([]*Histogram, 0, len(hists))
	for _, h := range hists {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}
