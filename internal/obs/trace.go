package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The run-trace layer gives every experiment, campaign and lease run a
// process-unique ID and an ordered event log: each recorded phase
// carries its wall time and the registry counter deltas that accrued
// during it (engine counters and histogram count/sum pairs), so an
// operator can ask "what did run run-000017 actually do" — how many
// machines it booted vs forked, how many traces it fused, how many PAC
// authentications it burned — via GET /v1/runs/{id}/trace or
// `cmd/experiments -trace`.
//
// Tracing is strictly host-side bookkeeping off the execution fast
// path: counter deltas are read from the flushed shard accumulators,
// so a run's numbers include everything its CPUs flushed at Run exit
// (experiment work completes all its CPU.Run calls before the phase is
// recorded, so per-phase deltas are exact for sequential runs and
// merely overlapped for concurrent ones — same contract as
// RunStats.Exact).

// Run is one traced unit of work. A nil *Run is valid and records
// nothing, so call sites thread it unconditionally.
type Run struct {
	id    string
	kind  string
	label string
	start time.Time

	mu     sync.Mutex
	events []TraceEvent
	last   capture
	done   bool
	wall   time.Duration
}

// TraceEvent is one recorded phase of a run.
type TraceEvent struct {
	// Name identifies the phase ("exp:fig4", "campaign", "machine-run").
	Name string `json:"name"`
	// AtNs is the phase end, in nanoseconds since the run began.
	AtNs int64 `json:"at_ns"`
	// WallNs is the phase duration.
	WallNs int64 `json:"wall_ns,omitempty"`
	// Counters holds the non-zero registry deltas accrued since the
	// previous event, keyed by full sample name; histograms contribute
	// <name>_count and <name>_sum_ns entries.
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// RunTrace is the wire form of a run's trace (GET /v1/runs/{id}/trace).
type RunTrace struct {
	ID          string       `json:"id"`
	Kind        string       `json:"kind"`
	Label       string       `json:"label,omitempty"`
	StartUnixNs int64        `json:"start_unix_ns"`
	WallNs      int64        `json:"wall_ns"`
	Done        bool         `json:"done"`
	Events      []TraceEvent `json:"events"`
}

// capture is a registry reading used to compute per-phase deltas.
type capture struct {
	counters [NumCounters]uint64
	hists    []histCapture
}

type histCapture struct {
	name  string
	count uint64
	sumNs uint64
}

func captureTotals() capture {
	c := capture{counters: CounterTotals()}
	for _, h := range sortedHists() {
		c.hists = append(c.hists, histCapture{name: h.sampleName(), count: h.count.Load(), sumNs: h.sumNs.Load()})
	}
	return c
}

// delta returns the non-zero differences now-prev as sample-name keyed
// counts. Histograms registered after prev was captured count from
// zero.
func (now *capture) delta(prev *capture) map[string]uint64 {
	d := map[string]uint64{}
	for id := CounterID(0); id < NumCounters; id++ {
		if v := now.counters[id] - prev.counters[id]; v != 0 {
			d[id.SampleName()] = v
		}
	}
	prevH := map[string]histCapture{}
	for _, h := range prev.hists {
		prevH[h.name] = h
	}
	for _, h := range now.hists {
		p := prevH[h.name]
		if v := h.count - p.count; v != 0 {
			d[h.name+"_count"] = v
		}
		if v := h.sumNs - p.sumNs; v != 0 {
			d[h.name+"_sum_ns"] = v
		}
	}
	if len(d) == 0 {
		return nil
	}
	return d
}

// runSeq numbers runs process-wide; the store below keeps the most
// recent maxStoredRuns retrievable by ID.
var runSeq atomic.Uint64

const maxStoredRuns = 256

var (
	runMu    sync.Mutex
	runs     = map[string]*Run{}
	runOrder []string
)

// BeginRun starts a traced run and registers it in the bounded store.
// kind groups runs ("experiments", "campaign", "machine-run"); label
// is free-form (experiment IDs, lease ID).
func BeginRun(kind, label string) *Run {
	r := &Run{
		id:    fmt.Sprintf("run-%06d", runSeq.Add(1)),
		kind:  kind,
		label: label,
		start: time.Now(),
		last:  captureTotals(),
	}
	runMu.Lock()
	runs[r.id] = r
	runOrder = append(runOrder, r.id)
	if len(runOrder) > maxStoredRuns {
		delete(runs, runOrder[0])
		runOrder = runOrder[1:]
	}
	runMu.Unlock()
	return r
}

// ID returns the run's process-unique identifier ("" for nil).
func (r *Run) ID() string {
	if r == nil {
		return ""
	}
	return r.id
}

// Phase records one completed phase: its wall duration plus the
// registry deltas since the previous event. Safe for concurrent use
// (parallel experiment cells record in completion order).
func (r *Run) Phase(name string, wall time.Duration) {
	if r == nil {
		return
	}
	now := captureTotals()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, TraceEvent{
		Name:     name,
		AtNs:     time.Since(r.start).Nanoseconds(),
		WallNs:   wall.Nanoseconds(),
		Counters: now.delta(&r.last),
	})
	r.last = now
}

// End marks the run complete and freezes its wall time. Idempotent.
func (r *Run) End() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.done {
		r.done = true
		r.wall = time.Since(r.start)
	}
}

// Trace snapshots the run's event log (valid mid-run; Done reports
// whether End has been called). Nil-safe: returns a zero RunTrace.
func (r *Run) Trace() RunTrace {
	if r == nil {
		return RunTrace{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	wall := r.wall
	if !r.done {
		wall = time.Since(r.start)
	}
	return RunTrace{
		ID:          r.id,
		Kind:        r.kind,
		Label:       r.label,
		StartUnixNs: r.start.UnixNano(),
		WallNs:      wall.Nanoseconds(),
		Done:        r.done,
		Events:      append([]TraceEvent(nil), r.events...),
	}
}

// RunTraceByID retrieves a stored run's trace.
func RunTraceByID(id string) (RunTrace, bool) {
	runMu.Lock()
	r := runs[id]
	runMu.Unlock()
	if r == nil {
		return RunTrace{}, false
	}
	return r.Trace(), true
}
