// Package obs is the process-wide observability registry: engine
// counters, latency histograms, gauges, Prometheus text exposition and
// the structured run-trace layer (DESIGN.md §11).
//
// The design contract is that instrumentation must cost one plain
// uint64 add on the execution fast path, allocate nothing, and never
// perturb guest-visible state (so experiment output stays
// byte-identical with observability enabled):
//
//   - Hot paths bump plain, unsynchronized uint64 cells in a per-core
//     Local block owned by exactly one goroutine while a CPU runs
//     (the same ownership discipline as the CPU's registers).
//   - At CPU.Run exit the Local block is flushed with atomic adds into
//     a small set of cache-line-padded shard accumulators; scrapes read
//     only those atomics, so a concurrent /metrics scrape is race-free
//     and sees counters that are stale by at most one run budget.
//   - Cold paths (COW materialization, pool events, HTTP handling) add
//     atomically straight into a shard — off the instruction loop, the
//     atomic costs nothing that matters.
//
// Counters are identified by a static CounterID enum with a metadata
// table mapping each ID to its Prometheus family, help text and
// pre-rendered label set; several IDs may share one family (e.g. the
// per-key PAC counters, the per-cause trace exits), which is how the
// exposition grows labels without any runtime map lookups on the hot
// path.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// CounterID names one engine counter cell. The enum is static: hot
// paths index Local.V and the shard accumulators by it directly.
type CounterID int

// Engine counters. Grouped by subsystem; IDs sharing a family differ
// only in their pre-rendered label set.
const (
	// internal/cpu — execution pipeline.
	CRetired CounterID = iota
	CCycles
	CTLBHit
	CTLBMiss
	CBlockFill
	CBlockSever
	CChainFollow
	CTraceBuild
	CTraceEnter
	CTraceExitEnd
	CTraceExitBranch
	CTraceExitFault
	CTraceExitHazard
	CTraceExitIRQ
	CTraceExitBudget
	CTraceExitStop
	CTraceSeverEntry
	CTraceSeverStale
	CSlowFallback

	// internal/mmu — translation machinery.
	CHostRearm
	CS2Walk

	// internal/mem — physical memory.
	CCOWMaterialize

	// internal/pac — pointer authentication, per key.
	CPACAuthIA
	CPACAuthIB
	CPACAuthDA
	CPACAuthDB
	CPACAuthGA
	CPACFailIA
	CPACFailIB
	CPACFailDA
	CPACFailDB
	CPACFailGA

	// internal/snapshot — warm pool.
	CPoolBoot
	CPoolHit
	CPoolMiss
	CPoolDrop
	CPoolEvict

	// internal/store — persistent snapshot store.
	CStoreHit
	CStoreMiss
	CStoreSave
	CStoreVerifyFail
	CStoreChunkWrite
	CStoreChunkDedup
	CStoreEvict

	// internal/server — queue and lease lifecycle.
	CQueueRejected
	CLeaseIssued
	CLeaseReleased
	CLeaseExpired
	CLeaseForceExpired

	// Failure model (DESIGN.md §13): injection, recovery, degradation.
	CFaultInjected
	CBootRetry
	CBreakerTrip
	CBreakerFastFail
	CPanicRecovered
	CWatchdogCancel
	CClientRetry
	CStoreQuarantined
	CStoreOrphanSweep
	CIdemReplay

	// NumCounters sizes every counter array; keep it last.
	NumCounters
)

// counterMeta maps a CounterID to its exposition identity.
type counterMeta struct {
	family string // Prometheus metric family name
	help   string // HELP text, emitted once per family
	labels string // pre-rendered label set without braces ("" for none)
}

var counterMetas = [NumCounters]counterMeta{
	CRetired:     {"camouflage_cpu_instructions_retired_total", "Guest instructions retired across all simulated CPUs.", ""},
	CCycles:      {"camouflage_cpu_cycles_total", "Simulated cycles across all simulated CPUs.", ""},
	CTLBHit:      {"camouflage_cpu_tlb_lookups_total", "Software TLB lookups by result.", `result="hit"`},
	CTLBMiss:     {"camouflage_cpu_tlb_lookups_total", "Software TLB lookups by result.", `result="miss"`},
	CBlockFill:   {"camouflage_cpu_block_cache_fills_total", "Decoded basic blocks inserted into per-CPU block caches.", ""},
	CBlockSever:  {"camouflage_cpu_block_cache_severs_total", "Code-page generation bumps severing cached blocks (guest stores into code pages).", ""},
	CChainFollow: {"camouflage_cpu_chain_follows_total", "Block transitions served by a direct chain edge instead of a full fetch.", ""},
	CTraceBuild:  {"camouflage_cpu_traces_built_total", "Superblock traces fused from hot chains.", ""},
	CTraceEnter:  {"camouflage_cpu_trace_enters_total", "Trace entries served by the superblock dispatcher.", ""},

	CTraceExitEnd:    {"camouflage_cpu_trace_exits_total", "Superblock trace exits by cause.", `cause="end"`},
	CTraceExitBranch: {"camouflage_cpu_trace_exits_total", "Superblock trace exits by cause.", `cause="branch"`},
	CTraceExitFault:  {"camouflage_cpu_trace_exits_total", "Superblock trace exits by cause.", `cause="fault"`},
	CTraceExitHazard: {"camouflage_cpu_trace_exits_total", "Superblock trace exits by cause.", `cause="hazard"`},
	CTraceExitIRQ:    {"camouflage_cpu_trace_exits_total", "Superblock trace exits by cause.", `cause="irq"`},
	CTraceExitBudget: {"camouflage_cpu_trace_exits_total", "Superblock trace exits by cause.", `cause="budget"`},
	CTraceExitStop:   {"camouflage_cpu_trace_exits_total", "Superblock trace exits by cause.", `cause="stop"`},
	CTraceSeverEntry: {"camouflage_cpu_trace_severs_total", "Superblock traces rejected or dropped by validity checks.", `cause="entry"`},
	CTraceSeverStale: {"camouflage_cpu_trace_severs_total", "Superblock traces rejected or dropped by validity checks.", `cause="stale"`},
	CSlowFallback:    {"camouflage_cpu_trace_slow_fallbacks_total", "In-trace instructions executed by the generic slow tier.", ""},

	CHostRearm: {"camouflage_mmu_hostptr_rearms_total", "Host-pointer TLB entries re-armed after a physical-memory generation bump.", ""},
	CS2Walk:    {"camouflage_mmu_stage2_walks_total", "Full translation walks (TLB miss, stage-1 + stage-2 check).", ""},

	CCOWMaterialize: {"camouflage_mem_cow_materializations_total", "Copy-on-write page materializations.", ""},

	CPACAuthIA: {"camouflage_pac_auths_total", "Pointer authentications by key.", `key="IA"`},
	CPACAuthIB: {"camouflage_pac_auths_total", "Pointer authentications by key.", `key="IB"`},
	CPACAuthDA: {"camouflage_pac_auths_total", "Pointer authentications by key.", `key="DA"`},
	CPACAuthDB: {"camouflage_pac_auths_total", "Pointer authentications by key.", `key="DB"`},
	CPACAuthGA: {"camouflage_pac_auths_total", "Pointer authentications by key.", `key="GA"`},
	CPACFailIA: {"camouflage_pac_auth_failures_total", "Pointer authentication failures by key.", `key="IA"`},
	CPACFailIB: {"camouflage_pac_auth_failures_total", "Pointer authentication failures by key.", `key="IB"`},
	CPACFailDA: {"camouflage_pac_auth_failures_total", "Pointer authentication failures by key.", `key="DA"`},
	CPACFailDB: {"camouflage_pac_auth_failures_total", "Pointer authentication failures by key.", `key="DB"`},
	CPACFailGA: {"camouflage_pac_auth_failures_total", "Pointer authentication failures by key.", `key="GA"`},

	CPoolBoot:  {"camouflage_snapshot_pool_boots_total", "Machines built+verified+booted from scratch (pool misses that paid a boot).", ""},
	CPoolHit:   {"camouflage_snapshot_pool_hits_total", "Machines served from the warm pool (idle reuse).", ""},
	CPoolMiss:  {"camouflage_snapshot_pool_misses_total", "Machines served as copy-on-write forks (no idle machine available).", ""},
	CPoolDrop:  {"camouflage_snapshot_pool_drops_total", "Released machines dropped because the per-key idle cap was reached.", ""},
	CPoolEvict: {"camouflage_snapshot_pool_evictions_total", "Idle machines evicted from the warm pool.", ""},

	CStoreHit:        {"camouflage_store_loads_total", "Snapshot loads from the persistent store by result.", `result="hit"`},
	CStoreMiss:       {"camouflage_store_loads_total", "Snapshot loads from the persistent store by result.", `result="miss"`},
	CStoreSave:       {"camouflage_store_saves_total", "Snapshots persisted to the store.", ""},
	CStoreVerifyFail: {"camouflage_store_verify_failures_total", "Snapshot loads refused because hash verification failed.", ""},
	CStoreChunkWrite: {"camouflage_store_chunks_total", "Page chunks handled on save by outcome.", `op="written"`},
	CStoreChunkDedup: {"camouflage_store_chunks_total", "Page chunks handled on save by outcome.", `op="deduped"`},
	CStoreEvict:      {"camouflage_store_evictions_total", "Snapshots deleted from the persistent store.", ""},

	CQueueRejected:     {"camouflage_server_queue_rejected_total", "Requests fast-failed because the admission queue was full.", ""},
	CLeaseIssued:       {"camouflage_server_leases_total", "Machine lease lifecycle events.", `event="issued"`},
	CLeaseReleased:     {"camouflage_server_leases_total", "Machine lease lifecycle events.", `event="released"`},
	CLeaseExpired:      {"camouflage_server_leases_total", "Machine lease lifecycle events.", `event="expired"`},
	CLeaseForceExpired: {"camouflage_server_leases_total", "Machine lease lifecycle events.", `event="force_expired"`},

	CFaultInjected:    {"camouflage_faults_injected_total", "Faults fired by the deterministic injection registry.", ""},
	CBootRetry:        {"camouflage_snapshot_pool_boot_retries_total", "Warm-pool boot attempts retried after a transient failure.", ""},
	CBreakerTrip:      {"camouflage_snapshot_pool_breaker_events_total", "Per-key boot circuit breaker events.", `event="trip"`},
	CBreakerFastFail:  {"camouflage_snapshot_pool_breaker_events_total", "Per-key boot circuit breaker events.", `event="fast_fail"`},
	CPanicRecovered:   {"camouflage_server_panics_recovered_total", "In-job panics caught by the per-request recovery barrier.", ""},
	CWatchdogCancel:   {"camouflage_server_watchdog_cancels_total", "Jobs cancelled by the run watchdog for exceeding their wall budget.", ""},
	CClientRetry:      {"camouflage_client_retries_total", "Client requests retried by the transport retry policy.", ""},
	CStoreQuarantined: {"camouflage_store_quarantines_total", "Snapshot digests quarantined after repeated verification failures.", ""},
	CStoreOrphanSweep: {"camouflage_store_recovery_orphans_total", "Orphaned temp files and partial manifests removed by the startup recovery sweep.", ""},
	CIdemReplay:       {"camouflage_server_idempotent_replays_total", "POST responses replayed from the idempotency table instead of re-running.", ""},
}

// SampleName returns the full exposition sample name of a counter
// (family plus pre-rendered label set), the key used by JSON snapshots
// and run-trace deltas.
func (id CounterID) SampleName() string {
	m := &counterMetas[id]
	if m.labels == "" {
		return m.family
	}
	return m.family + "{" + m.labels + "}"
}

// Local is a per-core block of plain uint64 counter cells. Exactly one
// goroutine bumps it at a time (the one running the owning CPU), so
// increments need no synchronization; the trailing pad keeps adjacent
// Locals of sibling cores off each other's cache lines. Flush drains
// it into the shared shard accumulators.
type Local struct {
	V [NumCounters]uint64
	_ [64]byte
}

// Flush adds every non-zero cell into the shard accumulators and
// zeroes it. It allocates nothing and is safe to call concurrently
// with scrapes (the shard side is atomic). shard selects the
// accumulator stripe, typically the owning CPU's ID.
func (l *Local) Flush(shard int) {
	s := &shards[shard&(numShards-1)]
	for i := range l.V {
		if v := l.V[i]; v != 0 {
			s.v[i].Add(v)
			l.V[i] = 0
		}
	}
}

// numShards stripes the global accumulators so concurrent flushes from
// many machines' CPUs don't serialize on one cache line per counter.
const numShards = 8

// shard is one accumulator stripe; the pad keeps stripes from sharing
// a cache line at their boundaries.
type shard struct {
	v [NumCounters]atomic.Uint64
	_ [64]byte
}

var shards [numShards]shard

// Add atomically adds n to a counter — the cold-path entry point
// (COW materialization, pool events, HTTP accounting). Striped by ID
// so unrelated cold counters don't contend.
func Add(id CounterID, n uint64) {
	shards[int(id)&(numShards-1)].v[id].Add(n)
}

// CounterTotal returns the flushed total of one counter.
func CounterTotal(id CounterID) uint64 {
	var t uint64
	for i := range shards {
		t += shards[i].v[id].Load()
	}
	return t
}

// CounterTotals snapshots every flushed counter total.
func CounterTotals() [NumCounters]uint64 {
	var t [NumCounters]uint64
	for i := range shards {
		for id := range t {
			t[id] += shards[i].v[id].Load()
		}
	}
	return t
}

// gauges are callback-valued instantaneous readings (queue depth,
// active leases, pool idle size). Registration replaces by name, so a
// test constructing a second server simply re-points the gauge at the
// live instance.
type gauge struct {
	name, help string
	fn         func() float64
}

var (
	gaugeMu sync.Mutex
	gauges  = map[string]gauge{}
)

// RegisterGauge registers (or replaces) a gauge read through fn at
// scrape time. fn must be safe to call from any goroutine.
func RegisterGauge(name, help string, fn func() float64) {
	gaugeMu.Lock()
	defer gaugeMu.Unlock()
	gauges[name] = gauge{name: name, help: help, fn: fn}
}

// sortedGauges snapshots the gauge table in name order (deterministic
// exposition).
func sortedGauges() []gauge {
	gaugeMu.Lock()
	defer gaugeMu.Unlock()
	out := make([]gauge, 0, len(gauges))
	for _, g := range gauges {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Vec is a counter family with runtime-chosen label sets, for the few
// places where the combination space is awkward to enumerate in the
// static table (per-endpoint × status-class HTTP accounting). Cells
// are memoized per pre-rendered label string; callers hold the
// returned *atomic.Uint64 and never touch the map again, so the mutex
// is off every request path that matters.
type Vec struct {
	name, help string

	mu    sync.Mutex
	cells map[string]*atomic.Uint64
}

var (
	vecMu sync.Mutex
	vecs  = map[string]*Vec{}
)

// NewVec returns the counter family of that name, creating it on first
// use (idempotent, so package init order never double-registers).
func NewVec(name, help string) *Vec {
	vecMu.Lock()
	defer vecMu.Unlock()
	if v, ok := vecs[name]; ok {
		return v
	}
	v := &Vec{name: name, help: help, cells: map[string]*atomic.Uint64{}}
	vecs[name] = v
	return v
}

// Cell returns the counter cell for a pre-rendered label set such as
// `endpoint="/v1/stats",code="2xx"` (no braces).
func (v *Vec) Cell(labels string) *atomic.Uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.cells[labels]
	if !ok {
		c = new(atomic.Uint64)
		v.cells[labels] = c
	}
	return c
}

// snapshotCells returns the vec's samples in label order.
func (v *Vec) snapshotCells() []vecSample {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]vecSample, 0, len(v.cells))
	for l, c := range v.cells {
		out = append(out, vecSample{labels: l, value: c.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

type vecSample struct {
	labels string
	value  uint64
}

// sortedVecs snapshots the vec table in name order.
func sortedVecs() []*Vec {
	vecMu.Lock()
	defer vecMu.Unlock()
	out := make([]*Vec, 0, len(vecs))
	for _, v := range vecs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
