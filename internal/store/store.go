// Package store is the content-addressed, on-disk snapshot and image
// store behind `camouflaged -store-dir` (DESIGN.md §12): booted machine
// snapshots persist across process restarts, so a daemon restarted
// against a populated store serves its first experiment in milliseconds
// — a verified load and a copy-on-write fork — instead of paying
// codegen, the §4.1 static-analysis gate and boot again.
//
// Layout under the store directory:
//
//	chunks/<aa>/<digest>        content-addressed blobs: every frozen
//	                            4KiB RAM page and every serialized state
//	                            record, named by its SHA-256. Snapshots
//	                            of the same image share almost all pages,
//	                            so N snapshots cost ~1 image of chunks.
//	snapshots/<digest>.json     manifests, named by the whole-snapshot
//	                            content digest they commit to.
//	pins/<digest>               pin markers: pinned snapshots survive GC
//	                            and Delete.
//
// Nothing is trusted on the way back in. Every Load recomputes the
// whole-snapshot digest from the manifest, the state record's SHA-256,
// and each page chunk's SHA-256 before a single fork is served; any
// mismatch is a typed *VerifyError and the snapshot is refused. The
// kernel image itself is never stored — it is rebuilt deterministically
// from the manifest's build options and §4.1-verified, exactly like a
// fresh boot.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"camouflage/internal/fault"
	"camouflage/internal/kernel"
	"camouflage/internal/mem"
	"camouflage/internal/obs"
	"camouflage/internal/snapshot"
)

var loadHist = obs.NewHistogram("camouflage_store_load_seconds",
	"Latency of verified snapshot loads from the persistent store.", obs.DefaultLatencyBuckets)

// manifestVersion guards the manifest schema; bump on layout changes.
const manifestVersion = 1

// PageRef binds one frozen RAM page to its content-addressed chunk.
type PageRef struct {
	PN    uint64 `json:"pn"`
	Chunk string `json:"chunk"`
}

// OptionsManifest is the human-readable build-options block. The
// authoritative options travel inside the state record; this block is
// for operators reading manifests and for /v1/snapshots listings.
type OptionsManifest struct {
	Scheme       int    `json:"scheme"`
	ForwardCFI   bool   `json:"forward_cfi"`
	DFI          bool   `json:"dfi"`
	ZeroModifier bool   `json:"zero_modifier"`
	CPUs         int    `json:"cpus"`
	Seed         uint64 `json:"seed"`
	Compat       bool   `json:"compat"`
	V80          bool   `json:"v80"`
	Threshold    int    `json:"failure_threshold"`
}

// Manifest describes one persisted snapshot. Its Digest commits to the
// key, the rebuilt image's identity, the state record and every page
// chunk — the whole-snapshot SHA-256 that Load verifies.
type Manifest struct {
	Version     int             `json:"version"`
	Digest      string          `json:"digest"`
	KeyDigest   string          `json:"key_digest"`
	Key         string          `json:"key"`
	Options     OptionsManifest `json:"options"`
	ImageDigest string          `json:"image_digest"`
	StateChunk  string          `json:"state_chunk"`
	StateSize   int             `json:"state_size"`
	Pages       []PageRef       `json:"pages"`
	CPUs        int             `json:"cpus"`
	BootCycles  uint64          `json:"boot_cycles"`
	CreatedUnix int64           `json:"created_unix"`
}

// contentDigest computes the whole-snapshot digest a manifest commits
// to: a canonical byte string over the configuration identity, image
// identity, state record and the ordered page→chunk map.
func (m *Manifest) contentDigest() string {
	var b strings.Builder
	fmt.Fprintf(&b, "camouflage-snapshot-v%d\n", m.Version)
	fmt.Fprintf(&b, "key %s\n", m.KeyDigest)
	fmt.Fprintf(&b, "image %s\n", m.ImageDigest)
	fmt.Fprintf(&b, "state %s %d\n", m.StateChunk, m.StateSize)
	for _, pg := range m.Pages {
		fmt.Fprintf(&b, "page %d %s\n", pg.PN, pg.Chunk)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// VerifyError reports an integrity failure: the named part of the
// snapshot hashed to Got where the manifest committed to Want. A
// snapshot that fails verification is never served.
type VerifyError struct {
	Digest string // snapshot content digest (as named on disk)
	Part   string // "manifest", "state", or "page <pn>"
	Want   string
	Got    string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("store: snapshot %.12s: %s hash mismatch: manifest commits to %.12s, content is %.12s",
		e.Digest, e.Part, e.Want, e.Got)
}

// Store is a content-addressed snapshot store rooted at a directory. It
// implements snapshot.Store; all methods are safe for concurrent use,
// including across processes sharing the directory (chunk writes are
// idempotent, manifest writes atomic).
type Store struct {
	dir string

	mu    sync.Mutex
	index map[string]*Manifest // key digest → newest manifest
	byDig map[string]*Manifest // content digest → manifest
	calls map[string]*loadCall // key digest → in-flight load

	// quarFails counts consecutive load failures per content digest;
	// at QuarantineThreshold the digest moves to quarantined and Load
	// fast-fails with *QuarantineError instead of re-verifying a known
	// bad snapshot forever (the pool degrades to a fresh boot).
	quarFails   map[string]int
	quarantined map[string]bool

	recovery RecoveryStats

	diskLoads atomic64
}

// RecoveryStats reports what the startup recovery sweep found: temp
// files stranded by a crash mid-write, and manifests torn by a crash
// mid-rename (only possible on pre-fsync stores or filesystem damage —
// every manifest is published by atomic rename).
type RecoveryStats struct {
	OrphanTmps   int `json:"orphan_tmps"`
	BadManifests int `json:"bad_manifests"`
}

// QuarantineThreshold is how many consecutive load failures quarantine
// a snapshot digest.
const QuarantineThreshold = 3

// QuarantineError reports a load refused because the digest is
// quarantined: it failed verification QuarantineThreshold times in a
// row and will not be re-verified until deleted or overwritten.
type QuarantineError struct {
	Digest   string
	Failures int
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("store: snapshot %.12s quarantined after %d consecutive load failures",
		e.Digest, e.Failures)
}

// atomic64 is a tiny wrapper so tests can count physical loads without
// importing sync/atomic here and there.
type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) add(n uint64) { a.mu.Lock(); a.v += n; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

type loadCall struct {
	done   chan struct{}
	snap   *snapshot.Snapshot
	digest string
	err    error
}

// Open opens (creating if needed) a store rooted at dir, runs the
// crash-recovery sweep, and indexes its manifests. The sweep removes
// temp files stranded by a crash mid-write and manifests that no longer
// parse (a torn write); both are safe to delete — a stranded temp was
// never published, and chunks behind a dead manifest are reclaimed by
// GC. Manifests that parse but are self-inconsistent are skipped, not
// deleted (they may belong to a newer schema), and verification still
// guards every load.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"chunks", "snapshots", "pins"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	s := &Store{
		dir:         dir,
		index:       make(map[string]*Manifest),
		byDig:       make(map[string]*Manifest),
		calls:       make(map[string]*loadCall),
		quarFails:   make(map[string]int),
		quarantined: make(map[string]bool),
	}
	s.sweepOrphans()
	ents, err := os.ReadDir(filepath.Join(dir, "snapshots"))
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		digest := strings.TrimSuffix(name, ".json")
		m, err := s.readManifest(digest)
		if err != nil {
			var torn *tornManifestError
			if errors.As(err, &torn) {
				if os.Remove(s.manifestPath(digest)) == nil {
					s.recovery.BadManifests++
				}
			}
			continue
		}
		s.admit(m)
	}
	if n := s.recovery.OrphanTmps + s.recovery.BadManifests; n > 0 {
		obs.Add(obs.CStoreOrphanSweep, uint64(n))
	}
	return s, nil
}

// sweepOrphans removes every .tmp-* file under chunks/ and snapshots/.
// Temp files exist only between CreateTemp and the publishing rename;
// any found at open were stranded by a crash and hold unreferenced,
// possibly torn bytes.
func (s *Store) sweepOrphans() {
	sweepDir := func(dir string) {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return
		}
		for _, ent := range ents {
			if strings.HasPrefix(ent.Name(), ".tmp-") {
				if os.Remove(filepath.Join(dir, ent.Name())) == nil {
					s.recovery.OrphanTmps++
				}
			}
		}
	}
	sweepDir(filepath.Join(s.dir, "snapshots"))
	root := filepath.Join(s.dir, "chunks")
	if dirs, err := os.ReadDir(root); err == nil {
		for _, d := range dirs {
			if d.IsDir() {
				sweepDir(filepath.Join(root, d.Name()))
			}
		}
	}
}

// Recovery returns what the startup sweep cleaned up.
func (s *Store) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// DiskLoads returns how many physical (non-coalesced) snapshot loads
// have run — concurrent loads of the same key count once.
func (s *Store) DiskLoads() uint64 { return s.diskLoads.load() }

func (s *Store) admit(m *Manifest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byDig[m.Digest] = m
	if prev := s.index[m.KeyDigest]; prev == nil || m.CreatedUnix >= prev.CreatedUnix {
		s.index[m.KeyDigest] = m
	}
}

func (s *Store) chunkPath(digest string) string {
	return filepath.Join(s.dir, "chunks", digest[:2], digest)
}

func (s *Store) manifestPath(digest string) string {
	return filepath.Join(s.dir, "snapshots", digest+".json")
}

func (s *Store) pinPath(digest string) string {
	return filepath.Join(s.dir, "pins", digest)
}

// writeFileAtomic publishes data at path crash-consistently: temp file
// in the same directory, fsync, rename, directory fsync. A crash at any
// point leaves either the old content or the new — never a torn file —
// plus at worst a stranded temp for the recovery sweep. The store.crash
// fault point models exactly that crash: it strands the temp file and
// fails; store.rename fails the publish cleanly.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := fault.ErrAt(fault.StoreCrash); err != nil {
		// Simulated crash-before-rename: the temp file stays behind,
		// exactly what a process death here leaves on disk.
		return err
	}
	if err := fault.ErrAt(fault.StoreRename); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// writeChunk stores blob under its SHA-256 unless already present,
// reporting whether a write happened. Concurrent writers of the same
// chunk are harmless: content-addressing makes the race write identical
// bytes, and the atomic publish keeps each write whole.
func (s *Store) writeChunk(blob []byte) (digest string, wrote bool, err error) {
	sum := sha256.Sum256(blob)
	digest = hex.EncodeToString(sum[:])
	path := s.chunkPath(digest)
	if _, err := os.Stat(path); err == nil {
		return digest, false, nil
	}
	if err := fault.ErrAt(fault.StoreChunkWrite); err != nil {
		return "", false, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", false, err
	}
	if err := writeFileAtomic(path, blob); err != nil {
		return "", false, err
	}
	return digest, true, nil
}

func (s *Store) readChunk(digest string) ([]byte, error) {
	if err := fault.ErrAt(fault.StoreChunkRead); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(s.chunkPath(digest))
	if err != nil {
		return nil, err
	}
	fault.Corrupt(fault.StoreChunkCorrupt, raw)
	return raw, nil
}

// tornManifestError marks a manifest that does not even parse — the
// signature of a torn write, which the open-time sweep deletes.
type tornManifestError struct{ err error }

func (e *tornManifestError) Error() string { return e.err.Error() }
func (e *tornManifestError) Unwrap() error { return e.err }

func (s *Store) readManifest(digest string) (*Manifest, error) {
	raw, err := os.ReadFile(s.manifestPath(digest))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, &tornManifestError{fmt.Errorf("store: manifest %s: %w", digest, err)}
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: manifest %s: version %d, want %d", digest, m.Version, manifestVersion)
	}
	if m.Digest != digest {
		return nil, fmt.Errorf("store: manifest %s claims digest %s", digest, m.Digest)
	}
	return &m, nil
}

// Save persists the snapshot: the state record and every frozen page go
// into the chunk store (pages already present — other snapshots of the
// same image — are deduplicated, not rewritten), then the manifest
// commits to the whole set under its content digest. Returns the
// content digest. Saving an already-persisted snapshot is a cheap
// no-op rewrite of the manifest.
func (s *Store) Save(key snapshot.Key, snap *snapshot.Snapshot) (string, error) {
	if err := fault.ErrAt(fault.StorePersist); err != nil {
		return "", err
	}
	st := snap.State()
	blob, err := st.Serialize()
	if err != nil {
		return "", fmt.Errorf("store: serialize snapshot: %w", err)
	}
	stateChunk, wrote, err := s.writeChunk(blob)
	if err != nil {
		return "", fmt.Errorf("store: write state chunk: %w", err)
	}
	written, deduped := uint64(0), uint64(0)
	if wrote {
		written++
	} else {
		deduped++
	}
	var pages []PageRef
	var pageErr error
	st.ForEachFrozenPage(func(pn uint64, pg *[mem.PageSize]byte) {
		if pageErr != nil {
			return
		}
		digest, wrote, err := s.writeChunk(pg[:])
		if err != nil {
			pageErr = err
			return
		}
		if wrote {
			written++
		} else {
			deduped++
		}
		pages = append(pages, PageRef{PN: pn, Chunk: digest})
	})
	if pageErr != nil {
		return "", fmt.Errorf("store: write page chunk: %w", pageErr)
	}
	obs.Add(obs.CStoreChunkWrite, written)
	obs.Add(obs.CStoreChunkDedup, deduped)

	opts := st.Options()
	m := &Manifest{
		Version:     manifestVersion,
		KeyDigest:   key.Digest,
		Key:         key.Norm(),
		ImageDigest: st.ImageDigest(),
		StateChunk:  stateChunk,
		StateSize:   len(blob),
		Pages:       pages,
		CPUs:        opts.Config.CPUs(),
		BootCycles:  snap.BootCycles(),
		CreatedUnix: time.Now().Unix(),
		Options: OptionsManifest{
			Scheme:       int(opts.Config.Scheme),
			ForwardCFI:   opts.Config.ForwardCFI,
			DFI:          opts.Config.DFI,
			ZeroModifier: opts.Config.ZeroModifier,
			CPUs:         opts.Config.CPUs(),
			Seed:         opts.Seed,
			Compat:       bool(opts.Compat),
			V80:          opts.V80,
			Threshold:    opts.FailureThreshold,
		},
	}
	m.Digest = m.contentDigest()

	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", fmt.Errorf("store: encode manifest: %w", err)
	}
	if err := fault.ErrAt(fault.StoreManifestWrite); err != nil {
		return "", fmt.Errorf("store: write manifest: %w", err)
	}
	if err := writeFileAtomic(s.manifestPath(m.Digest), append(raw, '\n')); err != nil {
		return "", fmt.Errorf("store: write manifest: %w", err)
	}
	s.admit(m)
	s.clearQuarantine(m.Digest)
	s.invalidate(key.Digest)
	obs.Add(obs.CStoreSave, 1)
	return m.Digest, nil
}

// invalidate drops the memoized load for a key so the next Load reads
// the (possibly replaced) manifest from disk. In-flight loads are left
// alone: their waiters get the result they queued for.
func (s *Store) invalidate(keyDigest string) {
	s.mu.Lock()
	if c := s.calls[keyDigest]; c != nil {
		select {
		case <-c.done:
			delete(s.calls, keyDigest)
		default:
		}
	}
	s.mu.Unlock()
}

// Load returns the newest verified snapshot persisted for the key's
// configuration, plus its content digest, or snapshot.ErrNotFound.
// Loads of the same key — concurrent or repeated — coalesce into one
// disk read: snapshots are immutable, so the verified result is shared
// until a Save or Delete of the key invalidates it.
func (s *Store) Load(key snapshot.Key) (*snapshot.Snapshot, string, error) {
	s.mu.Lock()
	if c := s.calls[key.Digest]; c != nil {
		s.mu.Unlock()
		<-c.done
		return c.snap, c.digest, c.err
	}
	m := s.index[key.Digest]
	if m == nil {
		s.mu.Unlock()
		obs.Add(obs.CStoreMiss, 1)
		return nil, "", snapshot.ErrNotFound
	}
	if s.quarantined[m.Digest] {
		fails := s.quarFails[m.Digest]
		s.mu.Unlock()
		return nil, "", &QuarantineError{Digest: m.Digest, Failures: fails}
	}
	c := &loadCall{done: make(chan struct{})}
	s.calls[key.Digest] = c
	s.mu.Unlock()

	c.snap, c.digest, c.err = s.loadManifest(m)
	if c.err != nil {
		// Do not memoize failures: a repaired (or re-saved) store must be
		// retryable without reopening. Waiters already queued still
		// observe this error. Only remove the call we installed — a
		// concurrent Save's invalidate may already have replaced it with
		// a newer in-flight load we must not evict.
		s.mu.Lock()
		if s.calls[key.Digest] == c {
			delete(s.calls, key.Digest)
		}
		s.mu.Unlock()
	}
	close(c.done)
	return c.snap, c.digest, c.err
}

// LoadDigest loads (and verifies) the snapshot with the given content
// digest regardless of which configuration it belongs to.
func (s *Store) LoadDigest(digest string) (*snapshot.Snapshot, error) {
	s.mu.Lock()
	m := s.byDig[digest]
	if m != nil && s.quarantined[digest] {
		fails := s.quarFails[digest]
		s.mu.Unlock()
		return nil, &QuarantineError{Digest: digest, Failures: fails}
	}
	s.mu.Unlock()
	if m == nil {
		obs.Add(obs.CStoreMiss, 1)
		return nil, snapshot.ErrNotFound
	}
	snap, _, err := s.loadManifest(m)
	return snap, err
}

// noteLoadFail records a failed physical load of a digest; the
// QuarantineThreshold'th consecutive failure quarantines it.
func (s *Store) noteLoadFail(digest string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quarFails[digest]++
	if s.quarFails[digest] >= QuarantineThreshold && !s.quarantined[digest] {
		s.quarantined[digest] = true
		obs.Add(obs.CStoreQuarantined, 1)
	}
}

// noteLoadOK resets the digest's consecutive-failure count.
func (s *Store) noteLoadOK(digest string) {
	s.mu.Lock()
	delete(s.quarFails, digest)
	s.mu.Unlock()
}

// clearQuarantine forgives a digest — a re-save published fresh content
// under it, so the failure history no longer describes what's on disk.
func (s *Store) clearQuarantine(digest string) {
	s.mu.Lock()
	delete(s.quarFails, digest)
	delete(s.quarantined, digest)
	s.mu.Unlock()
}

// Quarantined reports whether the snapshot digest is quarantined.
func (s *Store) Quarantined(digest string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined[digest]
}

// loadManifest runs the physical load and keeps the quarantine ledger:
// consecutive failures of one digest quarantine it, any success wipes
// its record.
func (s *Store) loadManifest(m *Manifest) (*snapshot.Snapshot, string, error) {
	snap, digest, err := s.loadManifestPhys(m)
	if err != nil {
		s.noteLoadFail(m.Digest)
	} else {
		s.noteLoadOK(m.Digest)
	}
	return snap, digest, err
}

// loadManifestPhys is the physical load: verify the manifest's own
// content digest, the state record, and every page chunk, then
// reconstruct the kernel state (rebuilding and §4.1-verifying the image
// from its build options).
func (s *Store) loadManifestPhys(m *Manifest) (*snapshot.Snapshot, string, error) {
	t0 := time.Now()
	s.diskLoads.add(1)
	if got := m.contentDigest(); got != m.Digest {
		obs.Add(obs.CStoreVerifyFail, 1)
		return nil, "", &VerifyError{Digest: m.Digest, Part: "manifest", Want: m.Digest, Got: got}
	}
	blob, err := s.readChunk(m.StateChunk)
	if err != nil {
		obs.Add(obs.CStoreVerifyFail, 1)
		return nil, "", fmt.Errorf("store: snapshot %.12s: read state chunk: %w", m.Digest, err)
	}
	if sum := sha256.Sum256(blob); hex.EncodeToString(sum[:]) != m.StateChunk || len(blob) != m.StateSize {
		obs.Add(obs.CStoreVerifyFail, 1)
		return nil, "", &VerifyError{Digest: m.Digest, Part: "state", Want: m.StateChunk,
			Got: hex.EncodeToString(func() []byte { h := sha256.Sum256(blob); return h[:] }())}
	}
	pages := make(map[uint64]*[mem.PageSize]byte, len(m.Pages))
	for _, ref := range m.Pages {
		raw, err := s.readChunk(ref.Chunk)
		if err != nil {
			obs.Add(obs.CStoreVerifyFail, 1)
			return nil, "", fmt.Errorf("store: snapshot %.12s: read page %d: %w", m.Digest, ref.PN, err)
		}
		sum := sha256.Sum256(raw)
		if got := hex.EncodeToString(sum[:]); got != ref.Chunk || len(raw) != mem.PageSize {
			obs.Add(obs.CStoreVerifyFail, 1)
			return nil, "", &VerifyError{Digest: m.Digest, Part: fmt.Sprintf("page %d", ref.PN), Want: ref.Chunk, Got: got}
		}
		var pg [mem.PageSize]byte
		copy(pg[:], raw)
		pages[ref.PN] = &pg
	}
	st, err := kernel.DeserializeState(blob, pages)
	if err != nil {
		obs.Add(obs.CStoreVerifyFail, 1)
		return nil, "", fmt.Errorf("store: snapshot %.12s: %w", m.Digest, err)
	}
	obs.Add(obs.CStoreHit, 1)
	loadHist.ObserveSince(t0)
	return snapshot.FromState(st), m.Digest, nil
}

// Info summarizes one persisted snapshot for listings.
type Info struct {
	Digest      string `json:"digest"`
	KeyDigest   string `json:"key_digest"`
	Key         string `json:"key"`
	ImageDigest string `json:"image_digest"`
	Pages       int    `json:"pages"`
	CPUs        int    `json:"cpus"`
	BootCycles  uint64 `json:"boot_cycles"`
	Pinned      bool   `json:"pinned"`
	Quarantined bool   `json:"quarantined,omitempty"`
	CreatedUnix int64  `json:"created_unix"`
}

// List returns every persisted snapshot, newest first.
func (s *Store) List() []Info {
	s.mu.Lock()
	ms := make([]*Manifest, 0, len(s.byDig))
	for _, m := range s.byDig {
		ms = append(ms, m)
	}
	s.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].CreatedUnix != ms[j].CreatedUnix {
			return ms[i].CreatedUnix > ms[j].CreatedUnix
		}
		return ms[i].Digest < ms[j].Digest
	})
	out := make([]Info, 0, len(ms))
	for _, m := range ms {
		out = append(out, Info{
			Digest:      m.Digest,
			KeyDigest:   m.KeyDigest,
			Key:         m.Key,
			ImageDigest: m.ImageDigest,
			Pages:       len(m.Pages),
			CPUs:        m.CPUs,
			BootCycles:  m.BootCycles,
			Pinned:      s.Pinned(m.Digest),
			Quarantined: s.Quarantined(m.Digest),
			CreatedUnix: m.CreatedUnix,
		})
	}
	return out
}

// ManifestFor returns the manifest persisted under the content digest.
func (s *Store) ManifestFor(digest string) (*Manifest, error) {
	s.mu.Lock()
	m := s.byDig[digest]
	s.mu.Unlock()
	if m == nil {
		return nil, snapshot.ErrNotFound
	}
	cp := *m
	cp.Pages = append([]PageRef(nil), m.Pages...)
	return &cp, nil
}

// Pin marks or unmarks the snapshot as pinned. Pins persist on disk, so
// they survive restarts and guard both Delete and GC.
func (s *Store) Pin(digest string, pinned bool) error {
	s.mu.Lock()
	m := s.byDig[digest]
	s.mu.Unlock()
	if m == nil {
		return snapshot.ErrNotFound
	}
	if pinned {
		f, err := os.OpenFile(s.pinPath(digest), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("store: pin %s: %w", digest, err)
		}
		return f.Close()
	}
	if err := os.Remove(s.pinPath(digest)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: unpin %s: %w", digest, err)
	}
	return nil
}

// Pinned reports whether the snapshot is pinned.
func (s *Store) Pinned(digest string) bool {
	_, err := os.Stat(s.pinPath(digest))
	return err == nil
}

// ErrPinned reports a Delete refused because the snapshot is pinned.
var ErrPinned = errors.New("store: snapshot is pinned")

// Delete removes the snapshot's manifest (chunks are left for GC, since
// other snapshots may share them). Pinned snapshots are refused with
// ErrPinned — unpin first.
func (s *Store) Delete(digest string) error {
	s.mu.Lock()
	m := s.byDig[digest]
	s.mu.Unlock()
	if m == nil {
		return snapshot.ErrNotFound
	}
	if s.Pinned(digest) {
		return ErrPinned
	}
	if err := os.Remove(s.manifestPath(digest)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: delete %s: %w", digest, err)
	}
	s.mu.Lock()
	delete(s.byDig, digest)
	if idx := s.index[m.KeyDigest]; idx != nil && idx.Digest == digest {
		delete(s.index, m.KeyDigest)
		// Another manifest for the key may remain; re-elect the newest.
		for _, other := range s.byDig {
			if other.KeyDigest == m.KeyDigest {
				if cur := s.index[m.KeyDigest]; cur == nil || other.CreatedUnix >= cur.CreatedUnix {
					s.index[m.KeyDigest] = other
				}
			}
		}
	}
	s.mu.Unlock()
	s.clearQuarantine(digest)
	s.invalidate(m.KeyDigest)
	obs.Add(obs.CStoreEvict, 1)
	return nil
}

// GC deletes chunks no remaining manifest references, returning how
// many were removed. Pinned snapshots' chunks are referenced by their
// manifests, so pins transitively protect chunk data too.
func (s *Store) GC() (int, error) {
	s.mu.Lock()
	live := make(map[string]bool)
	for _, m := range s.byDig {
		live[m.StateChunk] = true
		for _, pg := range m.Pages {
			live[pg.Chunk] = true
		}
	}
	s.mu.Unlock()
	removed := 0
	root := filepath.Join(s.dir, "chunks")
	dirs, err := os.ReadDir(root)
	if err != nil {
		return 0, fmt.Errorf("store: gc: %w", err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		ents, err := os.ReadDir(filepath.Join(root, d.Name()))
		if err != nil {
			return removed, fmt.Errorf("store: gc: %w", err)
		}
		for _, ent := range ents {
			name := ent.Name()
			if strings.HasPrefix(name, ".tmp-") || live[name] {
				continue
			}
			if err := os.Remove(filepath.Join(root, d.Name(), name)); err != nil {
				return removed, fmt.Errorf("store: gc: %w", err)
			}
			removed++
		}
	}
	if removed > 0 {
		obs.Add(obs.CStoreEvict, uint64(removed))
	}
	return removed, nil
}

// ImageInfo aggregates the persisted snapshots of one built image,
// surfacing what page-level dedup saves: TotalPages across snapshots
// versus UniqueChunks actually on disk.
type ImageInfo struct {
	ImageDigest  string   `json:"image_digest"`
	Snapshots    []string `json:"snapshots"`
	TotalPages   int      `json:"total_pages"`
	UniqueChunks int      `json:"unique_chunks"`
}

// Images groups persisted snapshots by the image they descend from.
func (s *Store) Images() []ImageInfo {
	s.mu.Lock()
	byImg := make(map[string][]*Manifest)
	for _, m := range s.byDig {
		byImg[m.ImageDigest] = append(byImg[m.ImageDigest], m)
	}
	s.mu.Unlock()
	imgs := make([]string, 0, len(byImg))
	for img := range byImg {
		imgs = append(imgs, img)
	}
	sort.Strings(imgs)
	out := make([]ImageInfo, 0, len(imgs))
	for _, img := range imgs {
		info := ImageInfo{ImageDigest: img}
		uniq := make(map[string]bool)
		ms := byImg[img]
		sort.Slice(ms, func(i, j int) bool { return ms[i].Digest < ms[j].Digest })
		for _, m := range ms {
			info.Snapshots = append(info.Snapshots, m.Digest)
			info.TotalPages += len(m.Pages)
			for _, pg := range m.Pages {
				uniq[pg.Chunk] = true
			}
		}
		info.UniqueChunks = len(uniq)
		out = append(out, info)
	}
	return out
}
