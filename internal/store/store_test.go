package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"camouflage/internal/attack"
	"camouflage/internal/codegen"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
	"camouflage/internal/snapshot"
)

func testKey(seed uint64, cpus int) snapshot.Key {
	cfg := codegen.ConfigFull()
	cfg.NumCPUs = cpus
	return snapshot.KeyFor(kernel.Options{Config: cfg, Seed: seed})
}

func bootSnap(t *testing.T, key snapshot.Key) *snapshot.Snapshot {
	t.Helper()
	k, err := snapshot.BootOptions(key.Options)()
	if err != nil {
		t.Fatal(err)
	}
	return snapshot.Take(k)
}

// fingerprint runs a syscall-heavy program on a fork and returns its
// observable outcome, UART bytes included.
type fingerprint struct {
	Cycles, Retired uint64
	Halted          bool
	UART            string
}

func runFixture(t *testing.T, k *kernel.Kernel) fingerprint {
	t.Helper()
	prog, err := kernel.BuildProgram("fixture", func(u *kernel.UserASM) {
		u.Syscall(kernel.SysOpenat, 0, kernel.PathDevZero, 0)
		u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
		u.CounterLoop("loop", insn.X21, 16, func() {
			u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
			u.MovImm(insn.X1, kernel.UserDataBase)
			u.MovImm(insn.X2, 64)
			u.SyscallReg(kernel.SysRead)
			u.SyscallReg(kernel.SysGetppid)
		})
		u.SyscallReg(kernel.SysClose)
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prog)
	if _, err := k.Spawn(1); err != nil {
		t.Fatal(err)
	}
	k.Run(10_000_000)
	return fingerprint{Cycles: k.CPU.Cycles, Retired: k.CPU.Retired, Halted: k.Halted, UART: k.UART.Output()}
}

// TestSaveLoadRoundTrip: a snapshot saved, then loaded by a *different*
// store handle (fresh process analogue), forks a machine byte-identical
// to one forked from the original capture — on uniprocessor and 2-vCPU
// machines alike.
func TestSaveLoadRoundTrip(t *testing.T) {
	for _, cpus := range []int{1, 2} {
		dir := t.TempDir()
		key := testKey(101, cpus)
		snap := bootSnap(t, key)

		s1, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		digest, err := s1.Save(key, snap)
		if err != nil {
			t.Fatal(err)
		}

		s2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		loaded, gotDigest, err := s2.Load(key)
		if err != nil {
			t.Fatalf("cpus=%d: %v", cpus, err)
		}
		if gotDigest != digest {
			t.Fatalf("load digest %s, saved %s", gotDigest, digest)
		}

		kFresh, err := snap.Fork()
		if err != nil {
			t.Fatal(err)
		}
		kLoaded, err := loaded.Fork()
		if err != nil {
			t.Fatal(err)
		}
		want := runFixture(t, kFresh)
		got := runFixture(t, kLoaded)
		if got != want {
			t.Fatalf("cpus=%d: fork from loaded snapshot diverges:\n loaded: %+v\n fresh:  %+v", cpus, got, want)
		}
	}
}

// TestSaveIsContentAddressed: saving the same configuration twice
// yields the same content digest and re-uses every chunk; a second
// snapshot of the same image dedups its pages against the first.
func TestSaveIsContentAddressed(t *testing.T) {
	dir := t.TempDir()
	key := testKey(102, 1)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := s.Save(key, bootSnap(t, key))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Save(key, bootSnap(t, key))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("identical snapshots got digests %s and %s", d1, d2)
	}
	imgs := s.Images()
	if len(imgs) != 1 {
		t.Fatalf("Images() = %d entries, want 1", len(imgs))
	}
	if imgs[0].UniqueChunks > imgs[0].TotalPages {
		t.Fatalf("unique chunks %d exceed total pages %d", imgs[0].UniqueChunks, imgs[0].TotalPages)
	}
}

// TestTamperedSnapshotRejected: flipping one bit of any chunk, or
// truncating it, or editing the manifest, must surface as a typed
// verification error — never a served machine.
func TestTamperedSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	key := testKey(103, 1)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := s.Save(key, bootSnap(t, key))
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.ManifestFor(digest)
	if err != nil {
		t.Fatal(err)
	}

	tamper := func(t *testing.T, mutate func() (restore func())) {
		t.Helper()
		restore := mutate()
		defer restore()
		fresh, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fresh.Load(key); err == nil {
			t.Fatal("tampered snapshot loaded without error")
		} else if !errors.Is(err, snapshot.ErrNotFound) {
			var ve *VerifyError
			if !errors.As(err, &ve) && !os.IsNotExist(errors.Unwrap(err)) {
				// Any refusal is acceptable as long as it is loud; the
				// common paths produce *VerifyError or a read error.
				t.Logf("refused with: %v", err)
			}
		}
	}

	chunkPath := filepath.Join(dir, "chunks", m.Pages[0].Chunk[:2], m.Pages[0].Chunk)
	statePath := filepath.Join(dir, "chunks", m.StateChunk[:2], m.StateChunk)
	maniPath := filepath.Join(dir, "snapshots", digest+".json")

	t.Run("bit-flipped page chunk", func(t *testing.T) {
		tamper(t, func() func() {
			orig, err := os.ReadFile(chunkPath)
			if err != nil {
				t.Fatal(err)
			}
			bad := append([]byte(nil), orig...)
			bad[len(bad)/2] ^= 0x01
			if err := os.WriteFile(chunkPath, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			return func() { os.WriteFile(chunkPath, orig, 0o644) }
		})
	})
	t.Run("truncated state chunk", func(t *testing.T) {
		tamper(t, func() func() {
			orig, err := os.ReadFile(statePath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(statePath, orig[:len(orig)/3], 0o644); err != nil {
				t.Fatal(err)
			}
			return func() { os.WriteFile(statePath, orig, 0o644) }
		})
	})
	t.Run("edited manifest", func(t *testing.T) {
		tamper(t, func() func() {
			orig, err := os.ReadFile(maniPath)
			if err != nil {
				t.Fatal(err)
			}
			var edited Manifest
			if err := json.Unmarshal(orig, &edited); err != nil {
				t.Fatal(err)
			}
			// Point page 0 at the state chunk: every chunk still hashes
			// clean individually, but the whole-snapshot digest no
			// longer matches the manifest's claim.
			edited.Pages[0].Chunk = edited.StateChunk
			raw, _ := json.Marshal(&edited)
			if err := os.WriteFile(maniPath, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			return func() { os.WriteFile(maniPath, orig, 0o644) }
		})
	})

	// Untampered store still loads fine afterwards.
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fresh.Load(key); err != nil {
		t.Fatalf("pristine snapshot refused after tamper tests: %v", err)
	}
}

// TestVerifyErrorIsTyped: a bit-flip produces *VerifyError specifically
// (clients and the daemon branch on it), naming the corrupt part.
func TestVerifyErrorIsTyped(t *testing.T) {
	dir := t.TempDir()
	key := testKey(104, 1)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := s.Save(key, bootSnap(t, key))
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.ManifestFor(digest)
	if err != nil {
		t.Fatal(err)
	}
	chunkPath := filepath.Join(dir, "chunks", m.Pages[0].Chunk[:2], m.Pages[0].Chunk)
	raw, err := os.ReadFile(chunkPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0x80
	if err := os.WriteFile(chunkPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = fresh.Load(key)
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("Load after bit flip = %v, want *VerifyError", err)
	}
	if ve.Want == ve.Got {
		t.Fatalf("VerifyError carries equal want/got hashes: %+v", ve)
	}
}

// TestConcurrentLoadDedup: many goroutines loading the same key share
// one physical read; everyone gets the same immutable snapshot.
func TestConcurrentLoadDedup(t *testing.T) {
	dir := t.TempDir()
	key := testKey(105, 1)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save(key, bootSnap(t, key)); err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	snaps := make([]*snapshot.Snapshot, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sn, _, err := fresh.Load(key)
			if err != nil {
				t.Error(err)
				return
			}
			snaps[i] = sn
		}(i)
	}
	wg.Wait()
	if got := fresh.DiskLoads(); got != 1 {
		t.Fatalf("%d concurrent loads hit disk %d times, want 1", n, got)
	}
	for i := 1; i < n; i++ {
		if snaps[i] != snaps[0] {
			t.Fatalf("concurrent loaders got distinct snapshots")
		}
	}
}

// TestPoolWarmStart: a store-backed pool in a fresh process arms its
// keys from disk with zero boots, and the machines it serves are
// byte-identical to boot-path machines.
func TestPoolWarmStart(t *testing.T) {
	dir := t.TempDir()
	key := testKey(106, 2)

	st1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p1 := snapshot.NewPool()
	p1.Store = st1
	m1, err := p1.Acquire(key, snapshot.BootOptions(key.Options))
	if err != nil {
		t.Fatal(err)
	}
	want := runFixture(t, m1.K)
	p1.WaitPersist()
	if s := p1.Stats(); s.Boots != 1 || s.StorePersists != 1 {
		t.Fatalf("cold pool stats = %+v, want 1 boot / 1 persist", s)
	}

	// "Restart": fresh pool, fresh store handle, same directory.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p2 := snapshot.NewPool()
	p2.Store = st2
	m2, err := p2.Acquire(key, func() (*kernel.Kernel, error) {
		t.Error("boot closure ran despite populated store")
		return snapshot.BootOptions(key.Options)()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := runFixture(t, m2.K); got != want {
		t.Fatalf("warm-started machine diverges:\n warm: %+v\n cold: %+v", got, want)
	}
	if s := p2.Stats(); s.Boots != 0 || s.StoreLoads != 1 {
		t.Fatalf("warm pool stats = %+v, want 0 boots / 1 store load", s)
	}
}

// TestCampaignParityWarmStart: a full differential attack campaign
// (2-vCPU cells, cross-core scenario included) run entirely from
// store-loaded snapshots produces a byte-identical report to one run
// from fresh boots — and pays zero boots doing it.
func TestCampaignParityWarmStart(t *testing.T) {
	dir := t.TempDir()
	campaign := attack.CampaignOptions{Mutations: 4, Seed: 9, CPUs: 2, Levels: []string{"none", "full"}}

	runWith := func(p *snapshot.Pool) []byte {
		t.Helper()
		old := snapshot.Shared
		snapshot.Shared = p
		defer func() { snapshot.Shared = old }()
		rep, err := attack.RunCampaign(campaign)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	st1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p1 := snapshot.NewPool()
	p1.Store = st1
	cold := runWith(p1)
	p1.WaitPersist()
	if s := p1.Stats(); s.Boots == 0 {
		t.Fatal("cold campaign paid no boots — store unexpectedly warm")
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p2 := snapshot.NewPool()
	p2.Store = st2
	warm := runWith(p2)
	if s := p2.Stats(); s.Boots != 0 {
		t.Fatalf("warm campaign paid %d boots, want 0", s.Boots)
	}
	if string(cold) != string(warm) {
		t.Fatalf("warm-start campaign report differs from cold run:\n cold: %s\n warm: %s", cold, warm)
	}
}

// TestPinDeleteGC: pinned snapshots refuse Delete; unpinned ones
// delete; GC removes exactly the chunks no surviving manifest
// references.
func TestPinDeleteGC(t *testing.T) {
	dir := t.TempDir()
	keyA := testKey(107, 1)
	keyB := testKey(108, 1) // different seed → different state, same image layout
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	digA, err := s.Save(keyA, bootSnap(t, keyA))
	if err != nil {
		t.Fatal(err)
	}
	digB, err := s.Save(keyB, bootSnap(t, keyB))
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Pin(digA, true); err != nil {
		t.Fatal(err)
	}
	if !s.Pinned(digA) {
		t.Fatal("Pinned(digA) = false after Pin")
	}
	if err := s.Delete(digA); !errors.Is(err, ErrPinned) {
		t.Fatalf("Delete(pinned) = %v, want ErrPinned", err)
	}
	// Pins survive reopen (restart).
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Pinned(digA) {
		t.Fatal("pin lost across reopen")
	}
	if err := s2.Pin(digA, false); err != nil {
		t.Fatal(err)
	}
	if err := s2.Delete(digB); err != nil {
		t.Fatal(err)
	}
	removed, err := s2.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("GC removed nothing although a snapshot was deleted")
	}
	// A's snapshot must still load clean — GC must not have touched any
	// chunk a surviving manifest references.
	if _, _, err := s2.Load(keyA); err != nil {
		t.Fatalf("surviving snapshot broken after GC: %v", err)
	}
	if _, _, err := s2.Load(keyB); !errors.Is(err, snapshot.ErrNotFound) {
		t.Fatalf("deleted snapshot still loads: %v", err)
	}
}

// TestCorruptStoreFallsBackToBoot: a store-backed pool whose persisted
// snapshot fails verification boots fresh instead of failing the key,
// and the re-persist overwrites cleanly.
func TestCorruptStoreFallsBackToBoot(t *testing.T) {
	dir := t.TempDir()
	key := testKey(109, 1)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := s.Save(key, bootSnap(t, key))
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.ManifestFor(digest)
	if err != nil {
		t.Fatal(err)
	}
	statePath := filepath.Join(dir, "chunks", m.StateChunk[:2], m.StateChunk)
	raw, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xFF
	if err := os.WriteFile(statePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := snapshot.NewPool()
	p.Store = st2
	mach, err := p.Acquire(key, snapshot.BootOptions(key.Options))
	if err != nil {
		t.Fatalf("pool failed on corrupt store instead of booting: %v", err)
	}
	mach.Release()
	// The fallback boot re-persists in the background; wait so the
	// TempDir cleanup doesn't race the manifest write.
	p.WaitPersist()
	if st := p.Stats(); st.Boots != 1 || st.StoreLoads != 0 {
		t.Fatalf("stats = %+v, want fallback boot", st)
	}
}
