package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"camouflage/internal/fault"
	"camouflage/internal/snapshot"
)

// withFaults installs a fault plan for the test and restores the
// previous registry on cleanup.
func withFaults(t *testing.T, spec string) *fault.Registry {
	t.Helper()
	r, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	prev := fault.Active()
	fault.Install(r)
	t.Cleanup(func() { fault.Install(prev) })
	return r
}

// TestLoadRetryableAfterInjectedFailure pins the singleflight error
// path: one failed load must leave the key retryable by the very next
// caller on the same open store — no reopen, no poisoned memo.
func TestLoadRetryableAfterInjectedFailure(t *testing.T) {
	dir := t.TempDir()
	key := testKey(131, 1)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save(key, bootSnap(t, key)); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := withFaults(t, "store.chunk.read=1")

	_, _, err = s2.Load(key)
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Point != fault.StoreChunkRead {
		t.Fatalf("first load error = %v, want injected store.chunk.read", err)
	}
	if got := r.Fired(fault.StoreChunkRead); got != 1 {
		t.Fatalf("fired %d faults, want 1", got)
	}

	snap, _, err := s2.Load(key)
	if err != nil {
		t.Fatalf("retry on the same store handle failed: %v", err)
	}
	if snap == nil {
		t.Fatal("retry returned nil snapshot")
	}
	if s2.DiskLoads() != 2 {
		t.Fatalf("disk loads = %d, want 2 (failed + retried)", s2.DiskLoads())
	}
	// The successful result is memoized again: a third load coalesces.
	if _, _, err := s2.Load(key); err != nil {
		t.Fatal(err)
	}
	if s2.DiskLoads() != 2 {
		t.Fatalf("disk loads = %d after memoized load, want 2", s2.DiskLoads())
	}
}

// TestRecoverySweep: stranded temp files and torn manifests are removed
// at open; intact manifests survive.
func TestRecoverySweep(t *testing.T) {
	dir := t.TempDir()
	key := testKey(132, 1)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := s.Save(key, bootSnap(t, key))
	if err != nil {
		t.Fatal(err)
	}

	// A crash mid-write strands temp files in both trees, and can tear a
	// manifest that was written without the atomic publish.
	for _, p := range []string{
		filepath.Join(dir, "snapshots", ".tmp-123"),
		filepath.Join(dir, "chunks", digest[:2], ".tmp-456"),
	} {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	torn := filepath.Join(dir, "snapshots", strings.Repeat("ab", 32)+".json")
	if err := os.WriteFile(torn, []byte(`{"version":1,"digest":"tr`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := s2.Recovery()
	if rec.OrphanTmps != 2 || rec.BadManifests != 1 {
		t.Fatalf("recovery = %+v, want 2 orphans + 1 bad manifest", rec)
	}
	if _, err := os.Stat(torn); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("torn manifest survived the sweep")
	}
	if _, _, err := s2.Load(key); err != nil {
		t.Fatalf("intact snapshot lost in sweep: %v", err)
	}
}

// TestCrashBeforeRenameStrandsTmp: the store.crash fault leaves exactly
// the on-disk state a process death mid-publish leaves, and the next
// open sweeps it.
func TestCrashBeforeRenameStrandsTmp(t *testing.T) {
	dir := t.TempDir()
	key := testKey(133, 1)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := bootSnap(t, key)

	withFaults(t, "store.crash=1")
	if _, err := s.Save(key, snap); err == nil {
		t.Fatal("Save survived an injected crash")
	}
	tmps := 0
	filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && strings.HasPrefix(filepath.Base(p), ".tmp-") {
			tmps++
		}
		return nil
	})
	if tmps == 0 {
		t.Fatal("injected crash stranded no temp file")
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec := s2.Recovery(); rec.OrphanTmps != tmps {
		t.Fatalf("sweep removed %d temps, crash stranded %d", rec.OrphanTmps, tmps)
	}
	// The crash exhausted its one shot; the same store now saves fine.
	if _, err := s2.Save(key, snap); err != nil {
		t.Fatalf("save after recovery: %v", err)
	}
	if _, _, err := s2.Load(key); err != nil {
		t.Fatalf("load after recovery: %v", err)
	}
}

// TestQuarantineAfterRepeatedFailures: the third consecutive failed
// load quarantines the digest; further loads fast-fail with a typed
// error and no disk work, listings surface it, and a fresh save of the
// same content lifts it.
func TestQuarantineAfterRepeatedFailures(t *testing.T) {
	dir := t.TempDir()
	key := testKey(134, 1)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := bootSnap(t, key)
	digest, err := s.Save(key, snap)
	if err != nil {
		t.Fatal(err)
	}

	withFaults(t, "store.chunk.read=3")
	for i := 0; i < QuarantineThreshold; i++ {
		if _, _, err := s.Load(key); err == nil {
			t.Fatalf("load %d survived the injected read failure", i)
		}
	}
	if !s.Quarantined(digest) {
		t.Fatal("digest not quarantined after repeated failures")
	}

	before := s.DiskLoads()
	_, _, err = s.Load(key)
	var qe *QuarantineError
	if !errors.As(err, &qe) || qe.Digest != digest || qe.Failures < QuarantineThreshold {
		t.Fatalf("load of quarantined digest = %v, want *QuarantineError", err)
	}
	if s.DiskLoads() != before {
		t.Fatal("quarantined load still hit the disk")
	}
	if _, err := s.LoadDigest(digest); !errors.As(err, &qe) {
		t.Fatalf("LoadDigest of quarantined digest = %v", err)
	}

	found := false
	for _, info := range s.List() {
		if info.Digest == digest {
			found = true
			if !info.Quarantined {
				t.Fatal("listing does not surface quarantine")
			}
		}
	}
	if !found {
		t.Fatal("digest missing from listing")
	}

	// A store-backed pool degrades to a fresh boot, it does not fail.
	p := snapshot.NewPool()
	p.Store = s
	m, err := p.Acquire(key, snapshot.BootOptions(key.Options))
	if err != nil {
		t.Fatalf("pool failed on quarantined digest instead of booting: %v", err)
	}
	m.Release()
	p.WaitPersist()
	if st := p.Stats(); st.Boots != 1 || st.StoreLoads != 0 {
		t.Fatalf("stats = %+v, want fallback boot", st)
	}

	// The fallback boot's persist re-published the digest: quarantine is
	// lifted and the next load verifies again (faults are exhausted).
	if s.Quarantined(digest) {
		t.Fatal("re-save did not lift quarantine")
	}
	if _, _, err := s.Load(key); err != nil {
		t.Fatalf("load after re-save: %v", err)
	}
}
