package asm

import (
	"encoding/binary"
	"testing"

	"camouflage/internal/insn"
)

func TestLinkSimple(t *testing.T) {
	a := New()
	a.Label("start")
	a.I(insn.MOVZ(insn.X0, 1, 0))
	a.I(insn.HLT(0))
	img, err := a.Link(map[string]uint64{".text": 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	if img.Symbols["start"] != 0x1000 {
		t.Fatalf("start = %#x", img.Symbols["start"])
	}
	sec := img.Sections[".text"]
	if len(sec.Bytes) != 8 {
		t.Fatalf("section size = %d", len(sec.Bytes))
	}
	w := binary.LittleEndian.Uint32(sec.Bytes[:4])
	if got := insn.Decode(w); got.Op != insn.OpMOVZ {
		t.Fatalf("first word decodes to %v", got.Op)
	}
}

func TestBranchRelocation(t *testing.T) {
	a := New()
	a.Label("start")
	a.BL("target")
	a.I(insn.HLT(0))
	a.Label("target")
	a.I(insn.RET())
	img, err := a.Link(map[string]uint64{".text": 0x8000})
	if err != nil {
		t.Fatal(err)
	}
	w := binary.LittleEndian.Uint32(img.Sections[".text"].Bytes[:4])
	i := insn.Decode(w)
	if i.Op != insn.OpBL || i.Imm != 8 {
		t.Fatalf("BL decoded as %+v, want offset 8", i)
	}
}

func TestBackwardBranch(t *testing.T) {
	a := New()
	a.Label("loop")
	a.I(insn.SUBi(insn.X0, insn.X0, 1))
	a.CBNZ(insn.X0, "loop")
	img, err := a.Link(map[string]uint64{".text": 0})
	if err != nil {
		t.Fatal(err)
	}
	w := binary.LittleEndian.Uint32(img.Sections[".text"].Bytes[4:8])
	i := insn.Decode(w)
	if i.Op != insn.OpCBNZ || i.Imm != -4 {
		t.Fatalf("CBNZ decoded as %+v, want offset -4", i)
	}
}

func TestCrossSectionRelocation(t *testing.T) {
	a := New()
	a.Label("f")
	a.ADR(insn.X0, "data")
	a.MOVAddr(insn.X1, "data")
	a.Section(".data")
	a.Label("data")
	a.Quad(0xDEADBEEF)
	a.QuadAddr("f", 4)
	img, err := a.Link(map[string]uint64{".text": 0x10000, ".data": 0x20000})
	if err != nil {
		t.Fatal(err)
	}
	text := img.Sections[".text"].Bytes
	adr := insn.Decode(binary.LittleEndian.Uint32(text[:4]))
	if adr.Op != insn.OpADR || adr.Imm != 0x10000 {
		t.Fatalf("ADR = %+v, want +0x10000", adr)
	}
	// MOVAddr materialises the absolute data address.
	var v uint64
	for k := 0; k < 4; k++ {
		i := insn.Decode(binary.LittleEndian.Uint32(text[4+4*k : 8+4*k]))
		switch i.Op {
		case insn.OpMOVZ:
			v = uint64(uint16(i.Imm)) << i.Shift
		case insn.OpMOVK:
			v = v&^(uint64(0xFFFF)<<i.Shift) | uint64(uint16(i.Imm))<<i.Shift
		case insn.OpNOP:
		default:
			t.Fatalf("unexpected op %v in MOVAddr chain", i.Op)
		}
	}
	if v != 0x20000 {
		t.Fatalf("MOVAddr chain loads %#x", v)
	}
	data := img.Sections[".data"].Bytes
	if got := binary.LittleEndian.Uint64(data[:8]); got != 0xDEADBEEF {
		t.Fatalf("Quad = %#x", got)
	}
	if got := binary.LittleEndian.Uint64(data[8:16]); got != 0x10004 {
		t.Fatalf("QuadAddr = %#x, want f+4", got)
	}
}

func TestAlignAndPadTo(t *testing.T) {
	a := New()
	a.I(insn.NOP())
	a.Align(16)
	if a.Offset() != 16 {
		t.Fatalf("offset after align = %d", a.Offset())
	}
	a.PadTo(0x80)
	if a.Offset() != 0x80 {
		t.Fatalf("offset after PadTo = %d", a.Offset())
	}
	a.Label("here")
	img, err := a.Link(map[string]uint64{".text": 0x4000})
	if err != nil {
		t.Fatal(err)
	}
	if img.Symbols["here"] != 0x4080 {
		t.Fatalf("here = %#x", img.Symbols["here"])
	}
}

func TestUndefinedLabel(t *testing.T) {
	a := New()
	a.BL("nowhere")
	if _, err := a.Link(map[string]uint64{".text": 0}); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestMissingSectionBase(t *testing.T) {
	a := New()
	a.I(insn.NOP())
	a.Section(".data")
	a.Quad(1)
	if _, err := a.Link(map[string]uint64{".text": 0}); err == nil {
		t.Fatal("missing base accepted")
	}
}

func TestOverlapDetected(t *testing.T) {
	a := New()
	a.Zero(0x100)
	a.Section(".data")
	a.Zero(0x100)
	if _, err := a.Link(map[string]uint64{".text": 0x1000, ".data": 0x1080}); err == nil {
		t.Fatal("overlapping sections accepted")
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label did not panic")
		}
	}()
	a := New()
	a.Label("x")
	a.Label("x")
}

func TestPadToBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("backwards PadTo did not panic")
		}
	}()
	a := New()
	a.Zero(0x100)
	a.PadTo(0x80)
}
