// Package asm is a small two-pass assembler over the insn builders. It
// provides named sections, labels, data directives and the relocation
// kinds the kernel image and loadable modules need (PC-relative branches,
// ADR, and absolute MOVZ/MOVK address materialisation).
package asm

import (
	"fmt"
	"sort"

	"camouflage/internal/insn"
)

// RelKind is a relocation kind.
type RelKind int

// Relocation kinds.
const (
	// RelNone marks plain instructions.
	RelNone RelKind = iota
	// RelBranch26 patches the imm26 of B/BL to a label.
	RelBranch26
	// RelBranch19 patches the imm19 of B.cond/CBZ/CBNZ to a label.
	RelBranch19
	// RelADR patches the ±1 MiB immediate of ADR to a label.
	RelADR
	// RelMOVWide patches a 4-instruction MOVZ/MOVK chain with the
	// absolute 64-bit address of a label.
	RelMOVWide
	// RelQuad patches a .quad data slot with the absolute address of a
	// label.
	RelQuad
)

// item is one assembled unit: an instruction, data bytes, or a pending
// relocation.
type item struct {
	// size in bytes.
	size int
	// ins holds instructions (1 for plain, 4 for MOVWide chains).
	ins []insn.Instr
	// data holds raw bytes for data items.
	data []byte
	// rel/target describe a pending relocation.
	rel    RelKind
	target string
	// addend is added to the target address.
	addend int64
}

// Section is a named, contiguous run of items.
type Section struct {
	Name  string
	items []item
	// Base is the virtual address assigned at link time.
	Base uint64
	size uint64
}

// Size returns the section size in bytes (valid after all emissions).
func (s *Section) Size() uint64 { return s.size }

// Assembler accumulates sections, labels and relocations.
type Assembler struct {
	sections map[string]*Section
	order    []string
	cur      *Section
	// labels maps label → (section, offset).
	labels map[string]labelPos
}

type labelPos struct {
	section string
	offset  uint64
}

// New returns an empty assembler positioned at a default ".text" section.
func New() *Assembler {
	a := &Assembler{
		sections: make(map[string]*Section),
		labels:   make(map[string]labelPos),
	}
	a.Section(".text")
	return a
}

// Section switches the current section, creating it if needed.
func (a *Assembler) Section(name string) {
	s, ok := a.sections[name]
	if !ok {
		s = &Section{Name: name}
		a.sections[name] = s
		a.order = append(a.order, name)
	}
	a.cur = s
}

// CurrentSection returns the name of the active section.
func (a *Assembler) CurrentSection() string { return a.cur.Name }

// Offset returns the current offset within the active section.
func (a *Assembler) Offset() uint64 { return a.cur.size }

// Label defines a label at the current position.
func (a *Assembler) Label(name string) {
	if _, dup := a.labels[name]; dup {
		panic(fmt.Sprintf("asm: duplicate label %q", name))
	}
	a.labels[name] = labelPos{a.cur.Name, a.cur.size}
}

func (a *Assembler) push(it item) {
	a.cur.items = append(a.cur.items, it)
	a.cur.size += uint64(it.size)
}

// I emits one instruction.
func (a *Assembler) I(ins ...insn.Instr) {
	for _, i := range ins {
		a.push(item{size: insn.Size, ins: []insn.Instr{i}})
	}
}

// BL emits a branch-with-link to a label.
func (a *Assembler) BL(label string) {
	a.push(item{size: insn.Size, ins: []insn.Instr{insn.BL(0)}, rel: RelBranch26, target: label})
}

// B emits an unconditional branch to a label.
func (a *Assembler) B(label string) {
	a.push(item{size: insn.Size, ins: []insn.Instr{insn.B(0)}, rel: RelBranch26, target: label})
}

// Bcond emits a conditional branch to a label.
func (a *Assembler) Bcond(c insn.Cond, label string) {
	a.push(item{size: insn.Size, ins: []insn.Instr{insn.Bcond(c, 0)}, rel: RelBranch19, target: label})
}

// CBZ emits a compare-and-branch-if-zero to a label.
func (a *Assembler) CBZ(rt insn.Reg, label string) {
	a.push(item{size: insn.Size, ins: []insn.Instr{insn.CBZ(rt, 0)}, rel: RelBranch19, target: label})
}

// CBNZ emits a compare-and-branch-if-nonzero to a label.
func (a *Assembler) CBNZ(rt insn.Reg, label string) {
	a.push(item{size: insn.Size, ins: []insn.Instr{insn.CBNZ(rt, 0)}, rel: RelBranch19, target: label})
}

// ADR emits an ADR of a label (±1 MiB).
func (a *Assembler) ADR(rd insn.Reg, label string) {
	a.push(item{size: insn.Size, ins: []insn.Instr{insn.ADR(rd, 0)}, rel: RelADR, target: label})
}

// MOVAddr emits a 4-instruction MOVZ/MOVK chain loading the absolute
// address of label into rd (the form module code uses for far symbols).
func (a *Assembler) MOVAddr(rd insn.Reg, label string) {
	chain := []insn.Instr{
		insn.MOVZ(rd, 0, 0),
		insn.MOVK(rd, 0, 16),
		insn.MOVK(rd, 0, 32),
		insn.MOVK(rd, 0, 48),
	}
	a.push(item{size: 4 * insn.Size, ins: chain, rel: RelMOVWide, target: label})
}

// Quad emits a 64-bit little-endian constant.
func (a *Assembler) Quad(v uint64) {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	a.push(item{size: 8, data: b})
}

// QuadAddr emits a 64-bit slot holding the absolute address of label
// (+addend).
func (a *Assembler) QuadAddr(label string, addend int64) {
	a.push(item{size: 8, data: make([]byte, 8), rel: RelQuad, target: label, addend: addend})
}

// Bytes emits raw data.
func (a *Assembler) Bytes(b []byte) {
	cp := make([]byte, len(b))
	copy(cp, b)
	a.push(item{size: len(cp), data: cp})
}

// Zero emits n zero bytes.
func (a *Assembler) Zero(n int) {
	a.push(item{size: n, data: make([]byte, n)})
}

// Align pads the current section to the given power-of-two boundary.
func (a *Assembler) Align(n uint64) {
	if n == 0 || n&(n-1) != 0 {
		panic("asm: alignment must be a power of two")
	}
	pad := (n - a.cur.size%n) % n
	if pad > 0 {
		a.Zero(int(pad))
	}
}

// PadTo pads the current section with zeros up to the absolute offset; it
// panics if the section is already past it (vector tables use this).
func (a *Assembler) PadTo(offset uint64) {
	if a.cur.size > offset {
		panic(fmt.Sprintf("asm: section %s already at %#x, cannot pad to %#x", a.cur.Name, a.cur.size, offset))
	}
	if pad := offset - a.cur.size; pad > 0 {
		a.Zero(int(pad))
	}
}

// Image is the result of linking: bytes per section plus a symbol table.
type Image struct {
	// Sections maps name → linked bytes.
	Sections map[string]*LinkedSection
	// Symbols maps label → absolute address.
	Symbols map[string]uint64
}

// LinkedSection is one relocated section.
type LinkedSection struct {
	Name  string
	Base  uint64
	Bytes []byte
}

// Link assigns the given base address to every section (missing sections
// are an error), resolves labels and applies relocations.
func (a *Assembler) Link(bases map[string]uint64) (*Image, error) {
	for _, name := range a.order {
		if _, ok := bases[name]; !ok {
			return nil, fmt.Errorf("asm: no base address for section %q", name)
		}
		a.sections[name].Base = bases[name]
	}
	// Overlap check.
	type span struct {
		lo, hi uint64
		name   string
	}
	var spans []span
	for _, name := range a.order {
		s := a.sections[name]
		spans = append(spans, span{s.Base, s.Base + s.size, name})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			return nil, fmt.Errorf("asm: sections %q and %q overlap", spans[i-1].name, spans[i].name)
		}
	}

	symbols := make(map[string]uint64, len(a.labels))
	for name, pos := range a.labels {
		symbols[name] = a.sections[pos.section].Base + pos.offset
	}

	img := &Image{Sections: make(map[string]*LinkedSection), Symbols: symbols}
	for _, name := range a.order {
		s := a.sections[name]
		out := make([]byte, 0, s.size)
		off := s.Base
		for _, it := range s.items {
			b, err := a.renderItem(it, off, symbols)
			if err != nil {
				return nil, fmt.Errorf("asm: section %s+%#x: %w", name, off-s.Base, err)
			}
			out = append(out, b...)
			off += uint64(it.size)
		}
		img.Sections[name] = &LinkedSection{Name: name, Base: s.Base, Bytes: out}
	}
	return img, nil
}

func (a *Assembler) renderItem(it item, addr uint64, symbols map[string]uint64) ([]byte, error) {
	resolve := func() (uint64, error) {
		t, ok := symbols[it.target]
		if !ok {
			return 0, fmt.Errorf("undefined label %q", it.target)
		}
		return uint64(int64(t) + it.addend), nil
	}
	switch it.rel {
	case RelNone:
		if it.data != nil {
			return it.data, nil
		}
		return encodeWords(it.ins), nil
	case RelBranch26, RelBranch19:
		t, err := resolve()
		if err != nil {
			return nil, err
		}
		i := it.ins[0]
		i.Imm = int64(t) - int64(addr)
		return encodeWords([]insn.Instr{i}), nil
	case RelADR:
		t, err := resolve()
		if err != nil {
			return nil, err
		}
		i := it.ins[0]
		i.Imm = int64(t) - int64(addr)
		return encodeWords([]insn.Instr{i}), nil
	case RelMOVWide:
		t, err := resolve()
		if err != nil {
			return nil, err
		}
		chain := insn.MOVImm64(it.ins[0].Rd, t)
		// Pad to exactly 4 instructions with NOPs to keep layout fixed.
		for len(chain) < 4 {
			chain = append(chain, insn.NOP())
		}
		return encodeWords(chain), nil
	case RelQuad:
		t, err := resolve()
		if err != nil {
			return nil, err
		}
		b := make([]byte, 8)
		for i := 0; i < 8; i++ {
			b[i] = byte(t >> (8 * i))
		}
		return b, nil
	}
	return nil, fmt.Errorf("unknown relocation kind %d", it.rel)
}

func encodeWords(ins []insn.Instr) []byte {
	out := make([]byte, 0, len(ins)*insn.Size)
	for _, i := range ins {
		w := i.Encode()
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}
