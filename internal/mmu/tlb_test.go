package mmu

import (
	"testing"

	"camouflage/internal/pac"
)

// mustHit translates and fails the test on any fault.
func mustHit(t *testing.T, m *MMU, va uint64, kind AccessKind, el int) uint64 {
	t.Helper()
	pa, f := m.Translate(va, kind, el)
	if f != nil {
		t.Fatalf("Translate(%#x, %v, EL%d): %v", va, kind, el, f)
	}
	return pa
}

// TestTLBCachesTranslations: repeated translations of the same page are
// served from the TLB (hit counters move) and return the same result.
func TestTLBCachesTranslations(t *testing.T) {
	m := newTestMMU()
	va := kbase | 0x8_0000
	m.TT1.Map(va, 0x4000_0000, KernelText)
	first := mustHit(t, m, va+0x10, Fetch, 1)
	misses := m.Misses
	second := mustHit(t, m, va+0x20, Fetch, 1)
	if m.Misses != misses {
		t.Fatalf("second fetch translation missed the TLB (misses %d -> %d)", misses, m.Misses)
	}
	if second != first+0x10 {
		t.Fatalf("TLB hit returned %#x, want %#x", second, first+0x10)
	}
	if m.Hits == 0 {
		t.Fatal("no TLB hits recorded")
	}
}

// TestTLBNotStaleAfterUnmap: a cached translation must not survive
// Table.Unmap — the page walk goes away, so must the TLB entry.
func TestTLBNotStaleAfterUnmap(t *testing.T) {
	m := newTestMMU()
	va := kbase | 0x30_0000
	m.TT1.Map(va, 0x4030_0000, KernelData)
	mustHit(t, m, va, Load, 1) // prime the D-TLB
	m.TT1.Unmap(va)
	if _, f := m.Translate(va, Load, 1); f == nil || f.Kind != FaultTranslation {
		t.Fatalf("after Unmap: %v, want translation fault (stale TLB entry served?)", f)
	}
}

// TestTLBNotStaleAfterRemap: re-Mapping a page to a new frame or with new
// permissions must take effect immediately.
func TestTLBNotStaleAfterRemap(t *testing.T) {
	m := newTestMMU()
	va := kbase | 0x40_0000
	m.TT1.Map(va, 0x4040_0000, KernelData)
	if pa := mustHit(t, m, va+8, Load, 1); pa != 0x4040_0008 {
		t.Fatalf("pa = %#x", pa)
	}
	// New frame.
	m.TT1.Map(va, 0x5050_0000, KernelData)
	if pa := mustHit(t, m, va+8, Load, 1); pa != 0x5050_0008 {
		t.Fatalf("after remap: pa = %#x, want %#x", pa, uint64(0x5050_0008))
	}
	// Permission downgrade: writable -> read-only.
	mustHit(t, m, va, Store, 1)
	m.TT1.Map(va, 0x5050_0000, KernelRO)
	if _, f := m.Translate(va, Store, 1); f == nil || f.Kind != FaultPermission {
		t.Fatalf("store after RO remap: %v, want permission fault", f)
	}
}

// TestTLBNotStaleAfterStage2Restrict: the hypervisor revoking read access
// (XOM) must not be bypassed by a translation cached before the Restrict
// — the exact attack the §4.1 key page defends against.
func TestTLBNotStaleAfterStage2Restrict(t *testing.T) {
	m := newTestMMU()
	va := kbase | 0x10_0000
	pa := uint64(0x4010_0000)
	m.TT1.Map(va, pa, KernelText)
	m.S2.Enabled = true
	mustHit(t, m, va, Load, 1)         // prime D-TLB
	mustHit(t, m, va, Fetch, 1)        // prime I-TLB
	m.S2.Restrict(pa, S2Perm{X: true}) // becomes XOM
	if _, f := m.Translate(va, Load, 1); f == nil || f.Kind != FaultStage2 {
		t.Fatalf("load after Restrict: %v, want stage-2 fault (stale TLB entry served?)", f)
	}
	// Execution is still allowed, through the I-TLB.
	mustHit(t, m, va, Fetch, 1)
	// Clearing the override restores the read.
	m.S2.Clear(pa)
	mustHit(t, m, va, Load, 1)
}

// TestTLBNotStaleAfterStage2Enable: flipping Stage2.Enabled (a plain
// field write, as the hypervisor does at boot) must invalidate cached
// results that were computed with stage 2 off.
func TestTLBNotStaleAfterStage2Enable(t *testing.T) {
	m := newTestMMU()
	va := kbase | 0x20_0000
	pa := uint64(0x4020_0000)
	m.TT1.Map(va, pa, KernelData)
	m.S2.Restrict(pa, S2Perm{X: true})
	mustHit(t, m, va, Load, 1) // stage 2 off: allowed, cached
	m.S2.Enabled = true
	if _, f := m.Translate(va, Load, 1); f == nil || f.Kind != FaultStage2 {
		t.Fatalf("load after stage-2 enable: %v, want stage-2 fault", f)
	}
}

// TestTLBNotStaleAfterTableSwap: swapping TT0 wholesale (context switch)
// must not serve translations from the previous address space.
func TestTLBNotStaleAfterTableSwap(t *testing.T) {
	m := newTestMMU()
	va := uint64(0x40_0000)
	m.TT0.Map(va, 0x8000_0000, UserData)
	mustHit(t, m, va, Load, 0)
	next := NewTable()
	next.Map(va, 0x9000_0000, UserData)
	m.TT0 = next
	if pa := mustHit(t, m, va, Load, 0); pa != 0x9000_0000 {
		t.Fatalf("after table swap: pa = %#x, want %#x", pa, uint64(0x9000_0000))
	}
	// A table with no mapping at all must fault, not hit stale state.
	m.TT0 = NewTable()
	if _, f := m.Translate(va, Load, 0); f == nil || f.Kind != FaultTranslation {
		t.Fatalf("after empty table swap: %v, want translation fault", f)
	}
}

// TestTLBKindAndELSeparation: access kind and EL are part of the entry
// identity — a Load hit must never satisfy a Store probe on a read-only
// page, nor an EL0 probe on a kernel page.
func TestTLBKindAndELSeparation(t *testing.T) {
	m := newTestMMU()
	va := kbase | 0x50_0000
	m.TT1.Map(va, 0x4050_0000, KernelRO)
	mustHit(t, m, va, Load, 1)
	if _, f := m.Translate(va, Store, 1); f == nil || f.Kind != FaultPermission {
		t.Fatalf("store via cached load translation: %v, want permission fault", f)
	}
	if _, f := m.Translate(va, Load, 0); f == nil || f.Kind != FaultPermission {
		t.Fatalf("EL0 load via cached EL1 translation: %v, want permission fault", f)
	}
}

// TestTLBExplicitInvalidate exercises the explicit hooks.
func TestTLBExplicitInvalidate(t *testing.T) {
	m := newTestMMU()
	va := kbase | 0x60_0000
	m.TT1.Map(va, 0x4060_0000, KernelData)
	mustHit(t, m, va, Load, 1)
	m.InvalidateTLB(va)
	misses := m.Misses
	mustHit(t, m, va, Load, 1)
	if m.Misses == misses {
		t.Fatal("InvalidateTLB did not drop the entry")
	}
	m.InvalidateTLBAll()
	misses = m.Misses
	mustHit(t, m, va, Load, 1)
	if m.Misses == misses {
		t.Fatal("InvalidateTLBAll did not drop the entry")
	}
}

// TestNoTLBMatchesTLB: with the TLB disabled every translation takes the
// slow path and results agree with the cached path.
func TestNoTLBMatchesTLB(t *testing.T) {
	fast := newTestMMU()
	slow := New(pac.DefaultConfig)
	slow.Enabled = true
	slow.NoTLB = true
	va := kbase | 0x70_0000
	for _, m := range []*MMU{fast, slow} {
		m.TT1.Map(va, 0x4070_0000, KernelData)
	}
	for i := 0; i < 3; i++ {
		pf := mustHit(t, fast, va+uint64(i*8), Load, 1)
		ps := mustHit(t, slow, va+uint64(i*8), Load, 1)
		if pf != ps {
			t.Fatalf("fast %#x != slow %#x", pf, ps)
		}
	}
	if slow.Hits != 0 {
		t.Fatal("NoTLB recorded hits")
	}
}
