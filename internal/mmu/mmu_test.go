package mmu

import (
	"testing"

	"camouflage/internal/pac"
)

const kbase = uint64(pac.KernelBase)

func newTestMMU() *MMU {
	m := New(pac.DefaultConfig)
	m.Enabled = true
	return m
}

func TestIdentityWhenDisabled(t *testing.T) {
	m := New(pac.DefaultConfig)
	pa, f := m.Translate(0x1234, Load, 1)
	if f != nil || pa != 0x1234 {
		t.Fatalf("disabled MMU: (%#x, %v)", pa, f)
	}
}

func TestKernelMapping(t *testing.T) {
	m := newTestMMU()
	va := kbase | 0x8_0000
	m.TT1.Map(va, 0x4000_0000, KernelText)
	pa, f := m.Translate(va+0x123, Fetch, 1)
	if f != nil {
		t.Fatal(f)
	}
	if pa != 0x4000_0123 {
		t.Fatalf("pa = %#x", pa)
	}
	// Kernel text is implicitly readable at EL1 (Appendix A.2)...
	if _, f := m.Translate(va, Load, 1); f != nil {
		t.Fatalf("EL1 load of kernel text faulted: %v", f)
	}
	// ... but not writable.
	if _, f := m.Translate(va, Store, 1); f == nil || f.Kind != FaultPermission {
		t.Fatalf("EL1 store to kernel text: %v, want permission fault", f)
	}
	// And EL0 cannot touch it.
	if _, f := m.Translate(va, Load, 0); f == nil || f.Kind != FaultPermission {
		t.Fatalf("EL0 load of kernel text: %v, want permission fault", f)
	}
}

func TestUserMapping(t *testing.T) {
	m := newTestMMU()
	va := uint64(0x40_0000)
	m.TT0.Map(va, 0x8000_0000, UserData)
	if _, f := m.Translate(va, Store, 0); f != nil {
		t.Fatalf("EL0 store: %v", f)
	}
	// Unmapped user address.
	if _, f := m.Translate(va+PageSize, Load, 0); f == nil || f.Kind != FaultTranslation {
		t.Fatalf("unmapped: %v, want translation fault", f)
	}
}

func TestTable1Selection(t *testing.T) {
	m := newTestMMU()
	// Same low bits, different bit 55: must hit different tables.
	m.TT0.Map(0x1000, 0x1111_0000, UserData)
	m.TT1.Map(kbase|0x1000, 0x2222_0000, KernelData)
	pa0, f0 := m.Translate(0x1000, Load, 0)
	pa1, f1 := m.Translate(kbase|0x1000, Load, 1)
	if f0 != nil || f1 != nil {
		t.Fatalf("faults: %v %v", f0, f1)
	}
	if pa0 != 0x1111_0000 || pa1 != 0x2222_0000 {
		t.Fatalf("pa0=%#x pa1=%#x", pa0, pa1)
	}
}

// TestNonCanonicalFaults: PAC-poisoned pointers land in the Table 1 hole
// and must raise an address-size fault.
func TestNonCanonicalFaults(t *testing.T) {
	m := newTestMMU()
	for _, va := range []uint64{
		0x0040_0000_0000_0000, // user side, bit 54 set
		0xFF7F_0000_0000_1000, // kernel side, poison bit cleared
		0x0001_0000_0000_0000,
	} {
		if _, f := m.Translate(va, Load, 1); f == nil || f.Kind != FaultAddressSize {
			t.Errorf("Translate(%#x): %v, want address-size fault", va, f)
		}
	}
}

// TestTBIUser: tagged user pointers translate with the tag stripped.
func TestTBIUser(t *testing.T) {
	m := newTestMMU()
	m.TT0.Map(0x7000, 0x9000_0000, UserData)
	tagged := uint64(0xAB00_0000_0000_7008)
	pa, f := m.Translate(tagged, Load, 0)
	if f != nil {
		t.Fatal(f)
	}
	if pa != 0x9000_0008 {
		t.Fatalf("pa = %#x", pa)
	}
	// Kernel side has no TBI: a tag there is non-canonical.
	if _, f := m.Translate(0xAB7F_0000_0000_1000|1<<55, Load, 1); f == nil {
		t.Error("tagged kernel pointer translated; TBI must be off for kernel")
	}
}

// TestStage1CannotExpressKernelXOM pins the Appendix A.2 property that
// motivates the whole XOM design: stage-1 mappings are always readable at
// EL1, so Map must force R1 even when asked for execute-only.
func TestStage1CannotExpressKernelXOM(t *testing.T) {
	m := newTestMMU()
	va := kbase | 0x10_0000
	m.TT1.Map(va, 0x4010_0000, X1) // ask for execute-only
	if _, f := m.Translate(va, Load, 1); f != nil {
		t.Fatalf("EL1 load faulted at stage 1: %v; VMSAv8 stage 1 cannot deny EL1 reads", f)
	}
}

// TestStage2XOM: the hypervisor expresses XOM at stage 2 — execution
// succeeds, EL1 reads and writes fault (§5.1).
func TestStage2XOM(t *testing.T) {
	m := newTestMMU()
	va := kbase | 0x10_0000
	pa := uint64(0x4010_0000)
	m.TT1.Map(va, pa, KernelText)
	m.S2.Enabled = true
	m.S2.Restrict(pa, S2Perm{X: true}) // XOM: no R, no W

	if _, f := m.Translate(va, Fetch, 1); f != nil {
		t.Fatalf("fetch from XOM faulted: %v", f)
	}
	if _, f := m.Translate(va, Load, 1); f == nil || f.Kind != FaultStage2 {
		t.Fatalf("load from XOM: %v, want stage-2 fault", f)
	}
	// Stores fault too — at stage 1 here, since text is not stage-1
	// writable; stage 1 is checked first, as in the architecture.
	if _, f := m.Translate(va, Store, 1); f == nil {
		t.Fatal("store to XOM did not fault")
	}
	// A stage-1-writable page still cannot be written once stage 2
	// revokes W: only the hypervisor can undo XOM.
	vaW := va + 2*PageSize
	paW := pa + 2*PageSize
	m.TT1.Map(vaW, paW, KernelData)
	m.S2.Restrict(paW, S2Perm{X: true})
	if _, f := m.Translate(vaW, Store, 1); f == nil || f.Kind != FaultStage2 {
		t.Fatalf("store to stage-2-protected page: %v, want stage-2 fault", f)
	}
	// Pages without overrides are unaffected.
	m.TT1.Map(va+PageSize, pa+PageSize, KernelData)
	if _, f := m.Translate(va+PageSize, Load, 1); f != nil {
		t.Fatalf("neighbour page faulted: %v", f)
	}
}

func TestStage2DisabledAllowsAll(t *testing.T) {
	m := newTestMMU()
	va := kbase | 0x20_0000
	pa := uint64(0x4020_0000)
	m.TT1.Map(va, pa, KernelData)
	m.S2.Restrict(pa, S2Perm{}) // deny everything — but stage 2 is off
	if _, f := m.Translate(va, Load, 1); f != nil {
		t.Fatalf("stage-2 disabled but fault: %v", f)
	}
}

func TestUnmap(t *testing.T) {
	m := newTestMMU()
	va := kbase | 0x30_0000
	m.TT1.Map(va, 0x4030_0000, KernelData)
	m.TT1.Unmap(va)
	if _, f := m.Translate(va, Load, 1); f == nil || f.Kind != FaultTranslation {
		t.Fatalf("after Unmap: %v", f)
	}
	if m.TT1.MappedPages() != 0 {
		t.Fatal("MappedPages after unmap != 0")
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Kind: FaultStage2, VA: 0x123, Access: Load, EL: 1}
	if f.Error() == "" {
		t.Fatal("empty fault message")
	}
	if FaultNone.String() == "" || Fetch.String() == "" {
		t.Fatal("empty enum names")
	}
}
