package mmu

// Persistence hooks for the content-addressed snapshot store: stage-1
// tables and the stage-2 overlay keep their maps unexported, so snapshot
// serialization goes through the deterministic export/import surface
// below (ascending page-number order, the store's manifest requirement).

import "sort"

// TableEntryWire is one stage-1 translation entry in wire form.
type TableEntryWire struct {
	PN  uint64
	PTE PTE
}

// Export returns the table's entries in ascending page-number order.
func (t *Table) Export() []TableEntryWire {
	out := make([]TableEntryWire, 0, len(t.entries))
	for pn, pte := range t.entries {
		out = append(out, TableEntryWire{PN: pn, PTE: pte})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PN < out[j].PN })
	return out
}

// NewTableFromEntries rebuilds a stage-1 table from exported entries.
func NewTableFromEntries(entries []TableEntryWire) *Table {
	t := NewTable()
	for _, e := range entries {
		t.entries[e.PN] = e.PTE
	}
	return t
}

// S2EntryWire is one stage-2 override in wire form.
type S2EntryWire struct {
	PN   uint64
	Perm S2Perm
}

// Export returns the overlay's overrides in ascending page-number order
// plus the enable latch.
func (s *Stage2) Export() (entries []S2EntryWire, enabled bool) {
	entries = make([]S2EntryWire, 0, len(s.overrides))
	for pn, p := range s.overrides {
		entries = append(entries, S2EntryWire{PN: pn, Perm: p})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].PN < entries[j].PN })
	return entries, s.Enabled
}

// NewStage2FromEntries rebuilds a stage-2 overlay from exported entries.
func NewStage2FromEntries(entries []S2EntryWire, enabled bool) *Stage2 {
	s := NewStage2()
	for _, e := range entries {
		s.overrides[e.PN] = e.Perm
	}
	s.Enabled = enabled
	return s
}
