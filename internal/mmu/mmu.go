// Package mmu models the VMSAv8 two-stage address translation relevant to
// the paper: stage 1 under kernel control (TTBR0_EL1 for user addresses,
// TTBR1_EL1 for kernel addresses, selected by bit 55 — Table 1), and
// stage 2 under hypervisor control.
//
// The essential architectural constraint reproduced here (Appendix A.2) is
// that the stage-1 translation-table format makes every valid mapping
// implicitly *readable* at EL1 — so execute-only memory for kernel code
// cannot be expressed at stage 1, and Camouflage's XOM key page must be
// enforced by removing the read permission in the hypervisor's stage-2
// tables.
package mmu

import (
	"fmt"

	"camouflage/internal/mem"
	"camouflage/internal/pac"
)

// PageSize and PageShift mirror the 4 KiB granule of the paper's setup.
const (
	PageSize  = 4096
	PageShift = 12
)

// Perm is a stage-1 permission set, split per exception level.
type Perm uint8

// Stage-1 permission bits.
const (
	R0 Perm = 1 << iota // EL0 read
	W0                  // EL0 write
	X0                  // EL0 execute
	R1                  // EL1 read
	W1                  // EL1 write
	X1                  // EL1 execute
)

// Common permission combinations.
const (
	// KernelText is kernel code: readable and executable at EL1 only.
	KernelText = R1 | X1
	// KernelData is kernel data: read/write at EL1 only.
	KernelData = R1 | W1
	// KernelRO is read-only kernel data (.rodata, operations structures).
	KernelRO = R1
	// UserText is user code (readable/executable at EL0; EL1 read implied).
	UserText = R0 | X0 | R1
	// UserData is user data.
	UserData = R0 | W0 | R1 | W1
)

// AccessKind distinguishes instruction fetch from data access.
type AccessKind int

// Access kinds.
const (
	Fetch AccessKind = iota
	Load
	Store
)

// String returns a diagnostic name.
func (k AccessKind) String() string {
	switch k {
	case Fetch:
		return "fetch"
	case Load:
		return "load"
	case Store:
		return "store"
	}
	return "access?"
}

// FaultKind classifies a translation failure.
type FaultKind int

// Fault kinds.
const (
	FaultNone FaultKind = iota
	// FaultAddressSize: the VA is outside the canonical ranges of Table 1
	// (this is what a PAC-poisoned pointer produces).
	FaultAddressSize
	// FaultTranslation: no stage-1 mapping.
	FaultTranslation
	// FaultPermission: stage-1 permission violation.
	FaultPermission
	// FaultStage2: stage-2 (hypervisor) permission violation, e.g. an EL1
	// data read of the XOM key page.
	FaultStage2
)

// String returns a diagnostic name.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultAddressSize:
		return "address-size"
	case FaultTranslation:
		return "translation"
	case FaultPermission:
		return "permission"
	case FaultStage2:
		return "stage2-permission"
	}
	return "fault?"
}

// Fault describes a failed translation.
type Fault struct {
	Kind   FaultKind
	VA     uint64
	Access AccessKind
	EL     int
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("mmu: %s fault on %s of %#x at EL%d", f.Kind, f.Access, f.VA, f.EL)
}

// PTE is a stage-1 page table entry.
type PTE struct {
	PA   uint64
	Perm Perm
}

// Table is one stage-1 translation table (the model keeps it as a map from
// VA page number to PTE rather than as an in-memory radix tree; the
// hypervisor locks the registers that point at it, so the abstraction does
// not change the attack surface the paper considers).
type Table struct {
	entries map[uint64]PTE
	// shared marks entries as copy-on-write: the map is referenced by at
	// least one clone and must be copied before the next mutation
	// (mutable() copies and clears the flag). Race-freedom of concurrent
	// Clone rests on a caller invariant, not on this flag alone: tables
	// reachable from a snapshot State are never mutated after capture,
	// so their flag stays true and Clone never writes it. Cloning a
	// *live* table concurrently with Map/Unmap is not supported.
	shared bool
	// gen is the table's invalidation generation. Every Map/Unmap bumps
	// it; TLB entries snapshot the generation at fill time, so a bump is a
	// broadcast TLBI for every translation cached from this table. This is
	// the "Map/Unmap paths must invalidate" half of the TLB contract
	// (DESIGN.md §3).
	gen uint64
}

// NewTable returns an empty stage-1 table.
func NewTable() *Table {
	return &Table{entries: make(map[uint64]PTE)}
}

// mutable returns the entries map, first un-sharing it (one full copy)
// if any clone still references it.
func (t *Table) mutable() map[uint64]PTE {
	if t.shared {
		cp := make(map[uint64]PTE, len(t.entries))
		for pn, pte := range t.entries {
			cp[pn] = pte
		}
		t.entries = cp
		t.shared = false
	}
	return t.entries
}

// Map installs a translation for the page containing va. Per VMSAv8
// (Appendix A.2), any valid stage-1 mapping is implicitly readable at EL1:
// R1 is forced on, which is exactly why stage-1 cannot express kernel XOM.
func (t *Table) Map(va, pa uint64, perm Perm) {
	t.mutable()[va>>PageShift] = PTE{PA: pa &^ (PageSize - 1), Perm: perm | R1}
	t.gen++
}

// Unmap removes the translation for the page containing va.
func (t *Table) Unmap(va uint64) {
	delete(t.mutable(), va>>PageShift)
	t.gen++
}

// Clone returns an independent copy-on-write copy of the table in O(1):
// both tables share the entries map until either mutates it. A shared
// source is not written (its flag is already set), so concurrent Clone
// calls on the same already-shared table — the snapshot fork path — are
// race-free. The clone starts at generation zero as a brand-new object:
// TLB entries snapshot the table *pointer* alongside the generation, so
// nothing cached from the original can ever hit against the clone.
func (t *Table) Clone() *Table {
	if !t.shared {
		t.shared = true
	}
	return &Table{entries: t.entries, shared: true}
}

// RestoreFrom replaces the table's contents with a copy-on-write view of
// src's, bumping the generation so every translation cached from this
// table is invalidated (the broadcast-TLBI contract of DESIGN.md §3).
func (t *Table) RestoreFrom(src *Table) {
	if !src.shared {
		src.shared = true
	}
	t.entries = src.entries
	t.shared = true
	t.gen++
}

// Lookup returns the PTE for va.
//
//camo:hotpath
func (t *Table) Lookup(va uint64) (PTE, bool) {
	pte, ok := t.entries[va>>PageShift]
	return pte, ok
}

// Gen returns the table's invalidation generation (bumped by every
// Map/Unmap/RestoreFrom). Callers caching translation results outside
// the TLB — the CPU's direct block chains — snapshot it and treat any
// change as a broadcast TLBI, exactly like a TLB entry does.
func (t *Table) Gen() uint64 { return t.gen }

// MappedPages returns the number of mapped pages.
func (t *Table) MappedPages() int { return len(t.entries) }

// S2Perm is a stage-2 permission override for one IPA page.
type S2Perm struct {
	R, W, X bool
}

// Stage2 is the hypervisor-owned second translation stage. IPA pages
// without an override get full access; overrides only restrict. XOM is the
// override {R: false, W: false, X: true}.
type Stage2 struct {
	overrides map[uint64]S2Perm
	// Enabled gates stage-2 checking; the hypervisor enables it at boot.
	Enabled bool
	// gen is the stage-2 invalidation generation, bumped on every
	// Restrict/Clear so cached translations are re-checked against the
	// current overlay (the stage-2 half of the TLB contract).
	gen uint64
}

// NewStage2 returns a disabled stage-2 with no overrides.
func NewStage2() *Stage2 {
	return &Stage2{overrides: make(map[uint64]S2Perm)}
}

// Restrict installs an override for the IPA page containing pa.
func (s *Stage2) Restrict(pa uint64, p S2Perm) {
	s.overrides[pa>>PageShift] = p
	s.gen++
}

// Clear removes the override for the IPA page containing pa.
func (s *Stage2) Clear(pa uint64) {
	delete(s.overrides, pa>>PageShift)
	s.gen++
}

// Clone returns an independent copy of the stage-2 overlay (generation
// reset: clones are always installed behind a full TLB flush).
func (s *Stage2) Clone() *Stage2 {
	overrides := make(map[uint64]S2Perm, len(s.overrides))
	for pn, p := range s.overrides {
		overrides[pn] = p
	}
	return &Stage2{overrides: overrides, Enabled: s.Enabled}
}

// RestoreFrom replaces the overlay's contents with a copy of src's,
// bumping the generation so cached translations are re-checked.
func (s *Stage2) RestoreFrom(src *Stage2) {
	overrides := make(map[uint64]S2Perm, len(src.overrides))
	for pn, p := range src.overrides {
		overrides[pn] = p
	}
	s.overrides = overrides
	s.Enabled = src.Enabled
	s.gen++
}

// Gen returns the stage-2 invalidation generation (bumped by every
// Restrict/Clear/RestoreFrom); see Table.Gen for the caching contract.
func (s *Stage2) Gen() uint64 { return s.gen }

// Check reports whether the access is allowed by stage 2.
//
//camo:hotpath
func (s *Stage2) Check(pa uint64, kind AccessKind) bool {
	if !s.Enabled {
		return true
	}
	p, ok := s.overrides[pa>>PageShift]
	if !ok {
		return true
	}
	switch kind {
	case Fetch:
		return p.X
	case Load:
		return p.R
	case Store:
		return p.W
	}
	return false
}

// TLB geometry: a small direct-mapped cache of completed translations,
// split I-side/D-side like the Cortex-A53 micro-TLBs the paper measures
// on. 256 entries per side covers the working set of the kernel plus one
// user process with essentially no conflict misses in the model's address
// layout.
const (
	tlbBits = 8
	tlbSize = 1 << tlbBits
	tlbMask = tlbSize - 1
)

// tlbEntry caches one successful translation. Besides the translation
// result it snapshots everything the result depended on: the stage-1
// table identity and generation (tables are swapped wholesale on context
// switch and mutated by Map/Unmap), and the stage-2 generation and enable
// state. A hit requires every snapshot to still match, so a stale entry
// can never be served — bumping a generation IS the TLBI.
//
// Load/Store entries for RAM-backed pages additionally cache the host
// pointer to the backing page array (hptr), guarded by the memory
// generation (memgen) at fill time: a TLB hit with a live host pointer
// turns the whole access into a bounds-checked flat-array read/write —
// no bus routing, no page-map lookup, zero allocations. Device-mapped
// and untouched pages fill with hptr == nil and keep the Bus path.
type tlbEntry struct {
	valid bool
	el    int8
	kind  AccessKind
	vpage uint64
	pa    uint64 // page-aligned translation result
	table *Table
	tgen  uint64
	s2gen uint64
	s2en  bool

	hptr   *[PageSize]byte
	memgen uint64
}

// MMU combines the two stage-1 tables, the stage-2 overlay and the address
// layout configuration.
type MMU struct {
	Cfg pac.Config
	// TT0 translates user (bit-55 clear) addresses; TT1 kernel addresses.
	TT0, TT1 *Table
	// S2 is the hypervisor stage.
	S2 *Stage2
	// Enabled gates stage-1 translation; before the MMU is on, addresses
	// are identity-mapped physical.
	Enabled bool
	// NoTLB disables the software TLB (benchmarking the slow path only;
	// set before first use).
	NoTLB bool
	// Mem, when set, enables the host-pointer fast path: successful
	// Load/Store fills also cache the backing RAM page pointer so
	// HostData can serve repeat accesses without touching the
	// bus. The CPU wires this to its own mem.Bus.
	Mem *mem.Bus
	// NoHostPtr disables host-pointer caching only (benchmarking the
	// TLB-hit-plus-Bus path; set before first use).
	NoHostPtr bool

	// itlb serves Fetch, dtlb serves Load/Store.
	itlb, dtlb [tlbSize]tlbEntry

	// Hits and Misses count TLB probes (diagnostics).
	Hits, Misses uint64
	// Rearms counts host-pointer re-arms: a TLB hit whose cached page
	// pointer had gone stale (physical-memory generation bump) and was
	// refreshed in place. S2Walks counts full translation walks — TLB
	// miss, stage-1 lookup plus stage-2 check. Plain fields like
	// Hits/Misses: the MMU is per-CPU and single-goroutine while its
	// CPU runs; the CPU drains them into the obs registry at Run exit.
	Rearms, S2Walks uint64
}

// New returns an MMU with empty tables for the given layout.
func New(cfg pac.Config) *MMU {
	return &MMU{Cfg: cfg, TT0: NewTable(), TT1: NewTable(), S2: NewStage2()}
}

// tlbIndex hashes (VA page, EL, access kind) to a direct-mapped slot.
func tlbIndex(vpage uint64, el int, kind AccessKind) uint64 {
	return (vpage ^ vpage>>tlbBits ^ uint64(el)<<7 ^ uint64(kind)<<6) & tlbMask
}

// InvalidateTLB drops any cached translation for the page containing va,
// on both sides and for every EL/access kind.
func (m *MMU) InvalidateTLB(va uint64) {
	eva := m.stripTag(va)
	vpage := eva >> PageShift
	for set := 0; set < 2; set++ {
		tlb := &m.itlb
		if set == 1 {
			tlb = &m.dtlb
		}
		for i := range tlb {
			if tlb[i].valid && tlb[i].vpage == vpage {
				tlb[i].valid = false
			}
		}
	}
}

// InvalidateTLBAll drops every cached translation (the TLBI ALLE1
// analogue; the hypervisor issues it when it seals the MMU configuration
// at lockdown).
func (m *MMU) InvalidateTLBAll() {
	m.itlb = [tlbSize]tlbEntry{}
	m.dtlb = [tlbSize]tlbEntry{}
}

// stripTag removes tag bits when TBI applies for the side of va, restoring
// the canonical sign extension above bit 55.
func (m *MMU) stripTag(va uint64) uint64 {
	if m.Cfg.IsKernel(va) {
		if m.Cfg.TBIKernel {
			return va | 0xFF00_0000_0000_0000
		}
		return va
	}
	if m.Cfg.TBIUser {
		return va &^ 0xFF00_0000_0000_0000
	}
	return va
}

// KernelSide reports whether va translates through TT1 (a kernel
// address: bit 55 set after tag stripping). The CPU's chain edges use it
// to pin which table a memoized translation depended on.
func (m *MMU) KernelSide(va uint64) bool {
	return m.Cfg.IsKernel(m.stripTag(va))
}

// Translate resolves va for the given access at the given EL, returning
// the physical address or a fault. It applies, in order: top-byte-ignore,
// the canonical-address check (which is what catches PAC-poisoned
// pointers), stage-1 lookup and permissions, then the stage-2 overlay.
//
//camo:hotpath
func (m *MMU) Translate(va uint64, kind AccessKind, el int) (uint64, *Fault) {
	if !m.Enabled {
		return va, nil
	}
	eva := m.stripTag(va)
	table := m.TT0
	if m.Cfg.IsKernel(eva) {
		table = m.TT1
	}

	// TLB probe. An entry hits only if the VA page, EL and access kind
	// match and none of the structures the cached result depends on have
	// changed since fill (table swap, Map/Unmap, stage-2 Restrict/Clear or
	// enable flip). Canonicality was checked at fill time for this exact
	// page, so a hit skips it.
	var e *tlbEntry
	if !m.NoTLB {
		vpage := eva >> PageShift
		set := &m.dtlb
		if kind == Fetch {
			set = &m.itlb
		}
		e = &set[tlbIndex(vpage, el, kind)]
		if e.valid && e.vpage == vpage && e.el == int8(el) && e.kind == kind &&
			e.table == table && e.tgen == table.gen &&
			e.s2gen == m.S2.gen && e.s2en == m.S2.Enabled {
			m.Hits++
			// The translation is still valid but the host pointer may
			// have gone stale (Freeze/ResetTo/COW materialization bump
			// memGen without touching the tables). Re-arm it here so the
			// fast path recovers without waiting for an entry eviction.
			if m.Mem != nil && !m.NoHostPtr && kind != Fetch &&
				e.memgen != m.Mem.MemGen() {
				if kind == Load {
					e.hptr = m.Mem.PageForLoad(e.pa)
				} else {
					e.hptr = m.Mem.PageForStore(e.pa)
				}
				e.memgen = m.Mem.MemGen()
				m.Rearms++
			}
			return e.pa | (eva & (PageSize - 1)), nil
		}
		m.Misses++
	}

	if !m.Cfg.IsCanonical(eva) {
		return 0, &Fault{Kind: FaultAddressSize, VA: va, Access: kind, EL: el} //camo:alloc fault path; faults are rare and end the block
	}
	pte, ok := table.Lookup(eva)
	if !ok {
		return 0, &Fault{Kind: FaultTranslation, VA: va, Access: kind, EL: el} //camo:alloc fault path; faults are rare and end the block
	}
	var need Perm
	switch {
	case el == 0 && kind == Fetch:
		need = X0
	case el == 0 && kind == Load:
		need = R0
	case el == 0 && kind == Store:
		need = W0
	case kind == Fetch:
		need = X1
	case kind == Load:
		need = R1
	default:
		need = W1
	}
	if pte.Perm&need != need {
		return 0, &Fault{Kind: FaultPermission, VA: va, Access: kind, EL: el} //camo:alloc fault path; faults are rare and end the block
	}
	pa := pte.PA | (eva & (PageSize - 1))
	m.S2Walks++
	if !m.S2.Check(pa, kind) {
		return 0, &Fault{Kind: FaultStage2, VA: va, Access: kind, EL: el} //camo:alloc fault path; faults are rare and end the block
	}
	if e != nil {
		*e = tlbEntry{
			valid: true, el: int8(el), kind: kind,
			vpage: eva >> PageShift, pa: pte.PA,
			table: table, tgen: table.gen,
			s2gen: m.S2.gen, s2en: m.S2.Enabled,
		}
		// Host-pointer fill for data accesses on RAM-backed pages. The
		// memgen snapshot is taken after PageForStore: materializing a
		// copy-on-write page bumps the generation, and the entry must
		// guard the pointer it actually cached, not its predecessor.
		if m.Mem != nil && !m.NoHostPtr {
			switch kind {
			case Load:
				e.hptr = m.Mem.PageForLoad(pte.PA)
				e.memgen = m.Mem.MemGen()
			case Store:
				e.hptr = m.Mem.PageForStore(pte.PA)
				e.memgen = m.Mem.MemGen()
			}
		}
	}
	return pa, nil
}

// HostData probes the D-side TLB for a host-pointer hit covering a
// Load or Store of size bytes at va. It is the one copy of the §3
// host-pointer validity clause — a single body for both access kinds,
// so a future validity input cannot be added to one path and missed on
// the other: every snapshot of the entry must still match, the cached
// host pointer must exist (RAM-backed page) and still be current
// (memgen), and the access must not straddle the page end.
//
// On a hit it returns the backing page, the in-page offset and the
// physical page number (stores use the latter for the block cache's
// code-invalidation check without re-translating); the caller performs
// the access as a flat-array read/write. On a miss the caller falls
// back to Translate + Bus, which refills (or re-arms) the entry.
func (m *MMU) HostData(va uint64, el int, size uint64, kind AccessKind) (*[PageSize]byte, uint64, uint64, bool) {
	if !m.Enabled || m.NoTLB || m.NoHostPtr {
		return nil, 0, 0, false
	}
	eva := m.stripTag(va)
	off := eva & (PageSize - 1)
	if off > PageSize-size {
		return nil, 0, 0, false
	}
	vpage := eva >> PageShift
	e := &m.dtlb[tlbIndex(vpage, el, kind)]
	if e.hptr == nil || !e.valid || e.vpage != vpage || e.el != int8(el) || e.kind != kind ||
		e.memgen != m.Mem.RAM.Gen() {
		return nil, 0, 0, false
	}
	table := m.TT0
	if m.Cfg.IsKernel(eva) {
		table = m.TT1
	}
	if e.table != table || e.tgen != table.gen || e.s2gen != m.S2.gen || e.s2en != m.S2.Enabled {
		return nil, 0, 0, false
	}
	m.Hits++
	return e.hptr, off, e.pa >> PageShift, true
}
