package mmu

// Tests for the host-pointer fast path: the two new §3 validity clauses
// (host-pointer validity = table gen × stage-2 gen × memGen; device
// pages never get a pointer) pinned at the MMU layer.

import (
	"testing"

	"camouflage/internal/mem"
)

// newHostMMU wires a test MMU to a fresh bus (the CPU does the same in
// New) and maps one kernel data page.
func newHostMMU(t *testing.T) (*MMU, *mem.Bus, uint64, uint64) {
	t.Helper()
	m := newTestMMU()
	bus := mem.NewBus()
	m.Mem = bus
	va := kbase | 0x30_0000
	pa := uint64(0x30_0000)
	m.TT1.Map(va, pa, KernelData)
	bus.Store(pa, 8, 0x1122334455667788)
	return m, bus, va, pa
}

// hostLoad/hostStore adapt HostData to the per-kind shapes the tests
// read naturally.
func hostLoad(m *MMU, va uint64, size uint64) (*[PageSize]byte, uint64, bool) {
	pg, off, _, ok := m.HostData(va, 1, size, Load)
	return pg, off, ok
}

func hostStore(m *MMU, va uint64, size uint64) (*[PageSize]byte, uint64, uint64, bool) {
	return m.HostData(va, 1, size, Store)
}

// fillLoad runs the slow path once so the next probe can hit.
func fillLoad(t *testing.T, m *MMU, va uint64) {
	t.Helper()
	if _, f := m.Translate(va, Load, 1); f != nil {
		t.Fatalf("fill translate: %v", f)
	}
}

func fillStore(t *testing.T, m *MMU, va uint64) {
	t.Helper()
	if _, f := m.Translate(va, Store, 1); f != nil {
		t.Fatalf("fill translate: %v", f)
	}
}

func TestHostLoadHitAfterFill(t *testing.T) {
	m, _, va, _ := newHostMMU(t)
	if _, _, ok := hostLoad(m, va, 8); ok {
		t.Fatal("host pointer hit before any fill")
	}
	fillLoad(t, m, va)
	pg, off, ok := hostLoad(m, va+0x10, 8)
	if !ok {
		t.Fatal("no host-pointer hit after fill")
	}
	if off != 0x10 {
		t.Fatalf("offset = %#x, want 0x10", off)
	}
	if pg[0] != 0x88 {
		t.Fatalf("page contents wrong: %#x", pg[0])
	}
}

func TestHostLoadDeclinesPageStraddle(t *testing.T) {
	m, _, va, _ := newHostMMU(t)
	fillLoad(t, m, va)
	if _, _, ok := hostLoad(m, va+PageSize-4, 8); ok {
		t.Fatal("host pointer served an access straddling the page end")
	}
}

func TestDevicePageNeverGetsHostPointer(t *testing.T) {
	m, bus, _, _ := newHostMMU(t)
	u := &mem.UART{}
	devPA := uint64(0x0900_0000)
	if err := bus.Map(devPA, 0x1000, u); err != nil {
		t.Fatal(err)
	}
	devVA := kbase | 0x0900_0000
	m.TT1.Map(devVA, devPA, KernelData)
	fillLoad(t, m, devVA)
	fillStore(t, m, devVA)
	if _, _, ok := hostLoad(m, devVA, 8); ok {
		t.Fatal("device page served from the host-pointer load path")
	}
	if _, _, _, ok := hostStore(m, devVA, 8); ok {
		t.Fatal("device page served from the host-pointer store path")
	}
}

// TestHostPointerStaleAfterFreeze: Freeze promotes overlay pages into
// the shared base; a cached store pointer would write the snapshot, so
// the memGen clause must kill it.
func TestHostPointerStaleAfterFreeze(t *testing.T) {
	m, bus, va, _ := newHostMMU(t)
	fillStore(t, m, va)
	if _, _, _, ok := hostStore(m, va, 8); !ok {
		t.Fatal("no store hit before freeze")
	}
	frozen := bus.RAM.Freeze()
	if _, _, _, ok := hostStore(m, va, 8); ok {
		t.Fatal("store pointer survived Freeze (would write the snapshot)")
	}
	// Refill materializes a private copy; writes stay out of the base.
	fillStore(t, m, va)
	pg, off, _, ok := hostStore(m, va, 8)
	if !ok {
		t.Fatal("no store hit after refill")
	}
	pg[off] = 0xFF
	if fork := mem.NewPhysFrom(frozen); fork.Read8(0x30_0000) == 0xFF {
		t.Fatal("post-freeze write leaked into the frozen base")
	}
}

// TestHostPointerStaleAfterMaterialize: a load pointer cached against a
// copy-on-write base page must die when a store materializes the
// private copy — otherwise loads would keep reading the stale base.
func TestHostPointerStaleAfterMaterialize(t *testing.T) {
	m, bus, va, pa := newHostMMU(t)
	frozen := bus.RAM.Freeze()
	bus.RAM.ResetTo(frozen) // run on a pristine overlay over the base
	fillLoad(t, m, va)
	basePg, _, ok := hostLoad(m, va, 8)
	if !ok {
		t.Fatal("no load hit against the base page")
	}
	bus.Store(pa, 8, 0xDEAD) // materializes the overlay copy
	if _, _, ok := hostLoad(m, va, 8); ok {
		t.Fatal("load pointer survived copy-on-write materialization")
	}
	fillLoad(t, m, va)
	overlayPg, _, ok := hostLoad(m, va, 8)
	if !ok {
		t.Fatal("no load hit after refill")
	}
	if overlayPg == basePg {
		t.Fatal("refilled load pointer still references the base page")
	}
}

func TestHostPointerStaleAfterUnmapAndStage2(t *testing.T) {
	m, _, va, pa := newHostMMU(t)
	fillLoad(t, m, va)
	m.TT1.Unmap(va)
	if _, _, ok := hostLoad(m, va, 8); ok {
		t.Fatal("host pointer survived Unmap")
	}
	m.TT1.Map(va, pa, KernelData)
	fillLoad(t, m, va)
	m.S2.Enabled = true
	m.S2.Restrict(pa, S2Perm{X: true}) // XOM: no reads
	if _, _, ok := hostLoad(m, va, 8); ok {
		t.Fatal("host pointer survived a stage-2 restrict")
	}
}

func TestNoHostPtrDisablesFastPath(t *testing.T) {
	m, _, va, _ := newHostMMU(t)
	m.NoHostPtr = true
	fillLoad(t, m, va)
	fillStore(t, m, va)
	if _, _, ok := hostLoad(m, va, 8); ok {
		t.Fatal("NoHostPtr did not disable the load fast path")
	}
	if _, _, _, ok := hostStore(m, va, 8); ok {
		t.Fatal("NoHostPtr did not disable the store fast path")
	}
}
