package qarma

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestSigma1IsInvolution(t *testing.T) {
	for i, v := range sigma1 {
		if sigma1[v] != byte(i) {
			t.Fatalf("sigma1[sigma1[%#x]] = %#x, want %#x", i, sigma1[v], i)
		}
	}
}

func TestTauInverse(t *testing.T) {
	for i := range tau {
		if tauInv[tau[i]] != i {
			t.Fatalf("tauInv[tau[%d]] = %d, want %d", i, tauInv[tau[i]], i)
		}
	}
}

func TestShuffleCellsRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		return shuffleCellsInv(shuffleCells(x)) == x && shuffleCells(shuffleCellsInv(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixColumnsIsInvolution(t *testing.T) {
	f := func(x uint64) bool {
		return mixColumns(mixColumns(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubCellsIsInvolution(t *testing.T) {
	f := func(x uint64) bool {
		return subCells(subCells(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLFSRInverse(t *testing.T) {
	for v := byte(0); v < 16; v++ {
		if lfsrInv(lfsr(v)) != v {
			t.Fatalf("lfsrInv(lfsr(%#x)) = %#x", v, lfsrInv(lfsr(v)))
		}
		if lfsr(lfsrInv(v)) != v {
			t.Fatalf("lfsr(lfsrInv(%#x)) = %#x", v, lfsr(lfsrInv(v)))
		}
	}
}

func TestLFSRPeriod(t *testing.T) {
	// ω must cycle through all 15 non-zero states (maximal period) and fix 0.
	if lfsr(0) != 0 {
		t.Fatalf("lfsr(0) = %#x, want 0", lfsr(0))
	}
	seen := map[byte]bool{}
	v := byte(1)
	for i := 0; i < 15; i++ {
		if seen[v] {
			t.Fatalf("lfsr cycle shorter than 15: repeated %#x after %d steps", v, i)
		}
		seen[v] = true
		v = lfsr(v)
	}
	if v != 1 {
		t.Fatalf("lfsr period is not 15: got back %#x", v)
	}
}

func TestUpdateTweakRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		return updateTweakInv(updateTweak(x)) == x && updateTweak(updateTweakInv(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCellsPackRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		return pack(cells(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	for rounds := 3; rounds <= 8; rounds++ {
		c := New(Key{W0: 0x84BE85CE9804E94B, K0: 0xEC2802D4E0A488E9}, rounds)
		f := func(p, tw uint64) bool {
			return c.Decrypt(c.Encrypt(p, tw), tw) == p
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("rounds=%d: %v", rounds, err)
		}
	}
}

func TestEncryptDecryptRandomKeys(t *testing.T) {
	f := func(w0, k0, p, tw uint64) bool {
		c := New(Key{W0: w0, K0: k0}, DefaultRounds)
		return c.Decrypt(c.Encrypt(p, tw), tw) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptIsPermutationPerTweak(t *testing.T) {
	// Distinct plaintexts must map to distinct ciphertexts under one tweak.
	c := New(Key{W0: 1, K0: 2}, DefaultRounds)
	seen := map[uint64]uint64{}
	for p := uint64(0); p < 4096; p++ {
		ct := c.Encrypt(p, 0xDEADBEEF)
		if prev, dup := seen[ct]; dup {
			t.Fatalf("collision: Encrypt(%#x) == Encrypt(%#x) == %#x", p, prev, ct)
		}
		seen[ct] = p
	}
}

// TestAvalanchePlaintext checks that flipping any single plaintext bit flips
// close to half of the output bits on average (the strict avalanche
// criterion, within generous statistical bounds).
func TestAvalanchePlaintext(t *testing.T) {
	c := New(Key{W0: 0x0123456789ABCDEF, K0: 0xFEDCBA9876543210}, DefaultRounds)
	total := 0
	n := 0
	for trial := uint64(0); trial < 64; trial++ {
		p := trial * 0x9E3779B97F4A7C15
		base := c.Encrypt(p, 42)
		for bit := 0; bit < 64; bit++ {
			d := c.Encrypt(p^(1<<bit), 42)
			total += bits.OnesCount64(base ^ d)
			n++
		}
	}
	avg := float64(total) / float64(n)
	if avg < 28 || avg > 36 {
		t.Fatalf("plaintext avalanche average %.2f bits, want ~32", avg)
	}
}

// TestAvalancheTweak checks diffusion of the tweak (the PAuth modifier).
func TestAvalancheTweak(t *testing.T) {
	c := New(Key{W0: 0x0123456789ABCDEF, K0: 0xFEDCBA9876543210}, DefaultRounds)
	total := 0
	n := 0
	for trial := uint64(0); trial < 64; trial++ {
		tw := trial*0x9E3779B97F4A7C15 + 1
		base := c.Encrypt(0x1122334455667788, tw)
		for bit := 0; bit < 64; bit++ {
			d := c.Encrypt(0x1122334455667788, tw^(1<<bit))
			total += bits.OnesCount64(base ^ d)
			n++
		}
	}
	avg := float64(total) / float64(n)
	if avg < 28 || avg > 36 {
		t.Fatalf("tweak avalanche average %.2f bits, want ~32", avg)
	}
}

// TestAvalancheKey checks diffusion of both key halves.
func TestAvalancheKey(t *testing.T) {
	total := 0
	n := 0
	for bit := 0; bit < 64; bit++ {
		base := New(Key{W0: 5, K0: 7}, DefaultRounds).Encrypt(99, 3)
		cw := New(Key{W0: 5 ^ 1<<bit, K0: 7}, DefaultRounds).Encrypt(99, 3)
		ck := New(Key{W0: 5, K0: 7 ^ 1<<bit}, DefaultRounds).Encrypt(99, 3)
		total += bits.OnesCount64(base^cw) + bits.OnesCount64(base^ck)
		n += 2
	}
	avg := float64(total) / float64(n)
	if avg < 26 || avg > 38 {
		t.Fatalf("key avalanche average %.2f bits, want ~32", avg)
	}
}

func TestMACTruncation(t *testing.T) {
	c := New(Key{W0: 11, K0: 13}, DefaultRounds)
	v, tw := uint64(0xFFFF000012345678), uint64(0x22)
	if got, want := c.MAC(v, tw), uint32(c.Encrypt(v, tw)); got != want {
		t.Fatalf("MAC = %#x, want low 32 bits of Encrypt = %#x", got, want)
	}
}

func TestNewPanicsOnBadRounds(t *testing.T) {
	for _, r := range []int{-1, 0, 2, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(rounds=%d) did not panic", r)
				}
			}()
			New(Key{}, r)
		}()
	}
}

func TestOrthoW(t *testing.T) {
	// o(x) = (x >>> 1) ^ (x >> 63): check a couple of hand-computed cases.
	if got := orthoW(1); got != 0x8000000000000000 {
		t.Fatalf("orthoW(1) = %#x", got)
	}
	if got := orthoW(0x8000000000000000); got != 0x4000000000000001 {
		t.Fatalf("orthoW(0x8000000000000000) = %#x", got)
	}
}

// Golden vectors pin the exact cipher output so that refactoring cannot
// silently change every PAC in the system. Values were produced by this
// implementation and are regression anchors, not published test vectors
// (see DESIGN.md: the instantiation is QARMA-64-σ1-structured; constants
// follow the QARMA paper).
func TestGoldenVectors(t *testing.T) {
	type vec struct {
		w0, k0, p, tw uint64
		rounds        int
		want          uint64
	}
	vectors := []vec{
		{0, 0, 0, 0, 5, goldenZero5},
		{0x84BE85CE9804E94B, 0xEC2802D4E0A488E9, 0xFB623599DA6E8127, 0x477D469DEC0B8762, 5, goldenPaper5},
		{0x84BE85CE9804E94B, 0xEC2802D4E0A488E9, 0xFB623599DA6E8127, 0x477D469DEC0B8762, 7, goldenPaper7},
	}
	for i, v := range vectors {
		c := New(Key{W0: v.w0, K0: v.k0}, v.rounds)
		if got := c.Encrypt(v.p, v.tw); got != v.want {
			t.Errorf("vector %d: Encrypt = %#016x, want %#016x", i, got, v.want)
		}
	}
}

// Regression anchors produced by this implementation (see TestGoldenVectors).
const (
	goldenZero5  = 0x315D7217D9E7D4CD
	goldenPaper5 = 0x6A3530FB3E7201B3
	goldenPaper7 = 0xF7180ACC50294AA3
)
