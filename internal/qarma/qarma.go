// Package qarma implements the QARMA-64 tweakable block cipher (R. Avanzi,
// "The QARMA Block Cipher Family", IACR ToSC 2017). QARMA is the reference
// pointer-authentication-code (PAC) algorithm of the ARMv8.3-A pointer
// authentication extension: the PAC inserted into the unused bits of an
// AArch64 pointer is a truncation of QARMA-64 applied to the pointer under a
// 128-bit key, with the PAuth modifier as the tweak.
//
// QARMA is a three-stage reflection cipher: r forward rounds, a keyed
// pseudo-reflector, and r backward rounds that are the functional inverses of
// the forward rounds. All building blocks (the σ1 S-box, the MixColumns-like
// matrix M, the cell permutation τ) are involutions, which is what makes the
// reflective construction work. This implementation provides both directions;
// Decrypt is the exact inverse of Encrypt, which the package tests verify
// exhaustively and property-based.
//
// The instantiation here follows the QARMA-64-σ1 parameter set with r
// configurable (the ARM reference PAC uses a 5-round variant). Round
// constants are the π-derived constants of the QARMA paper.
package qarma

// Rounds is the number of forward (and hence also backward) rounds. The
// QARMA paper recommends r = 7 for QARMA-64; the ARMv8.3 ComputePAC
// reference instantiation uses a 5-round variant. Five rounds is the default
// used by package pac.
const DefaultRounds = 5

// alpha is the reflector constant α of the QARMA paper.
const alpha = 0xC0AC29B7C97C50DD

// roundConst holds the π-derived round constants c0..c7.
var roundConst = [8]uint64{
	0x0000000000000000,
	0x13198A2E03707344,
	0xA4093822299F31D0,
	0x082EFA98EC4E6C89,
	0x452821E638D01377,
	0xBE5466CF34E90C6C,
	0x3F84D5B5B5470917,
	0x9216D5D98979FB1B,
}

// sigma1 is the σ1 S-box of the QARMA paper (an involution on 4-bit cells).
var sigma1 = [16]byte{0xA, 0xD, 0xE, 0x6, 0xF, 0x7, 0x3, 0x5, 0x9, 0x8, 0x0, 0xC, 0xB, 0x1, 0x2, 0x4}

// tau is the cell permutation τ: output cell i takes input cell tau[i].
var tau = [16]int{0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2}

// tauInv is the inverse of tau.
var tauInv [16]int

// tweakPerm is the tweak cell permutation h.
var tweakPerm = [16]int{6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11}

// tweakPermInv is the inverse of tweakPerm.
var tweakPermInv [16]int

// lfsrCells lists the tweak cells to which the ω LFSR is applied each round.
var lfsrCells = [4]int{0, 1, 3, 4}

func init() {
	for i, v := range tau {
		tauInv[v] = i
	}
	for i, v := range tweakPerm {
		tweakPermInv[v] = i
	}
	// σ1 must be an involution; the reflector depends on it.
	for i, v := range sigma1 {
		if sigma1[v] != byte(i) {
			panic("qarma: sigma1 is not an involution")
		}
	}
}

// Key is a 128-bit QARMA key, split into the whitening half W0 and the core
// half K0 as in the QARMA paper. An ARMv8.3 PAuth key register pair
// (APxKeyHi_EL1, APxKeyLo_EL1) maps onto (W0, K0).
type Key struct {
	W0 uint64
	K0 uint64
}

// Cipher is a QARMA-64 instance with a fixed key and round count.
type Cipher struct {
	rounds int
	w0, w1 uint64 // whitening keys
	k0, k1 uint64 // core and reflector keys
}

// New returns a QARMA-64 cipher for key k with the given number of forward
// rounds. New panics if rounds is not in [3, 8] (the supported schedule of
// round constants).
func New(k Key, rounds int) *Cipher {
	if rounds < 3 || rounds > 8 {
		panic("qarma: rounds out of range [3, 8]")
	}
	return &Cipher{
		rounds: rounds,
		w0:     k.W0,
		w1:     orthoW(k.W0),
		k0:     k.K0,
		k1:     k.K0 ^ alpha,
	}
}

// orthoW derives w1 from w0: o(x) = (x >>> 1) XOR (x >> 63).
func orthoW(x uint64) uint64 {
	return (x>>1 | x<<63) ^ (x >> 63)
}

// cells unpacks a 64-bit block into 16 nibbles, cell 0 being the most
// significant nibble (the convention of the QARMA paper).
func cells(x uint64) [16]byte {
	var c [16]byte
	for i := 0; i < 16; i++ {
		c[i] = byte(x>>(60-4*i)) & 0xF
	}
	return c
}

// pack is the inverse of cells.
func pack(c [16]byte) uint64 {
	var x uint64
	for i := 0; i < 16; i++ {
		x |= uint64(c[i]&0xF) << (60 - 4*i)
	}
	return x
}

// subCells applies the σ1 S-box to every cell of the state.
func subCells(x uint64) uint64 {
	var y uint64
	for i := 0; i < 64; i += 4 {
		y |= uint64(sigma1[(x>>i)&0xF]) << i
	}
	return y
}

// shuffleCells applies the cell permutation τ.
func shuffleCells(x uint64) uint64 {
	c := cells(x)
	var d [16]byte
	for i := 0; i < 16; i++ {
		d[i] = c[tau[i]]
	}
	return pack(d)
}

// shuffleCellsInv applies τ⁻¹.
func shuffleCellsInv(x uint64) uint64 {
	c := cells(x)
	var d [16]byte
	for i := 0; i < 16; i++ {
		d[i] = c[tauInv[i]]
	}
	return pack(d)
}

// rotNibble rotates a 4-bit cell left by n.
func rotNibble(v byte, n uint) byte {
	v &= 0xF
	return byte((v<<n | v>>(4-n)) & 0xF)
}

// mixColumns multiplies the state, viewed as a 4x4 cell matrix in row-major
// order, by the involutory almost-MDS matrix M = circ(0, ρ¹, ρ², ρ¹), where
// ρ is a one-bit left rotation of a cell. Columns of the matrix are the
// state columns c, c+4, c+8, c+12.
func mixColumns(x uint64) uint64 {
	c := cells(x)
	var d [16]byte
	for col := 0; col < 4; col++ {
		a0 := c[col]
		a1 := c[col+4]
		a2 := c[col+8]
		a3 := c[col+12]
		d[col] = rotNibble(a1, 1) ^ rotNibble(a2, 2) ^ rotNibble(a3, 1)
		d[col+4] = rotNibble(a0, 1) ^ rotNibble(a2, 1) ^ rotNibble(a3, 2)
		d[col+8] = rotNibble(a0, 2) ^ rotNibble(a1, 1) ^ rotNibble(a3, 1)
		d[col+12] = rotNibble(a0, 1) ^ rotNibble(a1, 2) ^ rotNibble(a2, 1)
	}
	return pack(d)
}

// lfsr applies the ω LFSR to a cell: (b3,b2,b1,b0) → (b0⊕b1, b3, b2, b1).
func lfsr(v byte) byte {
	b0 := v & 1
	b1 := (v >> 1) & 1
	return (v >> 1) | ((b0 ^ b1) << 3)
}

// lfsrInv is the inverse of lfsr.
func lfsrInv(v byte) byte {
	b3 := (v >> 3) & 1
	b0 := v & 1
	return ((v << 1) & 0xF) | (b3 ^ b0)
}

// updateTweak advances the tweak by one round: cell permutation h followed
// by the ω LFSR on cells 0, 1, 3 and 4.
func updateTweak(t uint64) uint64 {
	c := cells(t)
	var d [16]byte
	for i := 0; i < 16; i++ {
		d[i] = c[tweakPerm[i]]
	}
	for _, i := range lfsrCells {
		d[i] = lfsr(d[i])
	}
	return pack(d)
}

// updateTweakInv is the inverse of updateTweak.
func updateTweakInv(t uint64) uint64 {
	c := cells(t)
	for _, i := range lfsrCells {
		c[i] = lfsrInv(c[i])
	}
	var d [16]byte
	for i := 0; i < 16; i++ {
		d[i] = c[tweakPermInv[i]]
	}
	return pack(d)
}

// forwardRound applies one forward round with round tweakey tk. Short rounds
// (the first round) omit the diffusion layer.
func forwardRound(is, tk uint64, short bool) uint64 {
	is ^= tk
	if !short {
		is = shuffleCells(is)
		is = mixColumns(is)
	}
	return subCells(is)
}

// backwardRound is the exact inverse of forwardRound.
func backwardRound(is, tk uint64, short bool) uint64 {
	is = subCells(is) // σ1 is an involution
	if !short {
		is = mixColumns(is) // M is an involution
		is = shuffleCellsInv(is)
	}
	return is ^ tk
}

// reflector applies the keyed pseudo-reflector: τ, multiplication by the
// involutory matrix Q = M, key addition, τ⁻¹.
func (c *Cipher) reflector(is uint64) uint64 {
	is = shuffleCells(is)
	is = mixColumns(is)
	is ^= c.k1
	return shuffleCellsInv(is)
}

// Encrypt enciphers the 64-bit plaintext p under tweak t.
func (c *Cipher) Encrypt(p, t uint64) uint64 {
	is := p ^ c.w0
	tw := t
	for i := 0; i < c.rounds; i++ {
		is = forwardRound(is, c.k0^tw^roundConst[i], i == 0)
		tw = updateTweak(tw)
	}
	// Central whitening round and reflector.
	is = forwardRound(is, c.w1^tw, false)
	is = c.reflector(is)
	is = backwardRound(is, c.w0^tw, false)
	// Backward rounds replay the forward tweak schedule in reverse, with α
	// folded into the round tweakey.
	for i := c.rounds - 1; i >= 0; i-- {
		tw = updateTweakInv(tw)
		is = backwardRound(is, c.k0^tw^roundConst[i]^alpha, i == 0)
	}
	return is ^ c.w1
}

// reflectorInv is the exact inverse of reflector. Because Q is an
// involution, the inverse differs from the forward reflector only in that
// the key is diffused through Q before being added.
func (c *Cipher) reflectorInv(is uint64) uint64 {
	is = shuffleCells(is)
	is ^= c.k1
	is = mixColumns(is)
	return shuffleCellsInv(is)
}

// Decrypt deciphers the 64-bit ciphertext ct under tweak t. It is the
// explicit inverse circuit of Encrypt; the package tests verify
// Decrypt(Encrypt(p, t), t) == p for all keys, tweaks and round counts.
func (c *Cipher) Decrypt(ct, t uint64) uint64 {
	// Reconstruct the forward tweak schedule tw_0 .. tw_rounds.
	tws := make([]uint64, c.rounds+1)
	tws[0] = t
	for i := 0; i < c.rounds; i++ {
		tws[i+1] = updateTweak(tws[i])
	}
	is := ct ^ c.w1
	// Invert the backward rounds (they consumed tw_0..tw_{rounds-1} in
	// descending order, so the inverse walks them ascending).
	for i := 0; i < c.rounds; i++ {
		is = forwardRound(is, c.k0^tws[i]^roundConst[i]^alpha, i == 0)
	}
	// Invert the central construction.
	is = forwardRound(is, c.w0^tws[c.rounds], false)
	is = c.reflectorInv(is)
	is = backwardRound(is, c.w1^tws[c.rounds], false)
	// Invert the forward rounds.
	for i := c.rounds - 1; i >= 0; i-- {
		is = backwardRound(is, c.k0^tws[i]^roundConst[i], i == 0)
	}
	return is ^ c.w0
}

// MAC computes a 32-bit message authentication code over the 64-bit value v
// with tweak t, as the ARMv8.3 PAC construction does: the full 64-bit QARMA
// output truncated to its low 32 bits.
func (c *Cipher) MAC(v, t uint64) uint32 {
	return uint32(c.Encrypt(v, t))
}
