package figures

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestAllExperimentsRun regenerates every registered table and figure and
// checks the embedded invariants (each renderer validates its own shape
// and returns an error on divergence).
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.PaperRef, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig2"); !ok {
		t.Fatal("fig2 not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus id found")
	}
}

// TestKeySwitchNineCycles pins E1: mean ≈ 9 cycles/key with ~zero
// variance (paper: 8.88, variance 0.004).
func TestKeySwitchNineCycles(t *testing.T) {
	st, err := MeasureKeySwitch(20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean < 8 || st.Mean > 10 {
		t.Fatalf("per-key cost = %.2f cycles, want ≈9 (§6.1.1)", st.Mean)
	}
	if st.Variance > 0.1 {
		t.Fatalf("variance = %.3f; the deterministic model should be ≈0", st.Variance)
	}
}

// TestFigure2Shape pins E2's ordering and magnitudes.
func TestFigure2Shape(t *testing.T) {
	rows, err := MeasureFigure2()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig2Row{}
	for _, r := range rows {
		byName[r.Scheme.String()] = r
	}
	clang := byName["SP (Clang)"]
	camo := byName["Camouflage"]
	parts := byName["PARTS"]
	if !(clang.NsPerCall < camo.NsPerCall && camo.NsPerCall < parts.NsPerCall) {
		t.Fatalf("Figure 2 ordering violated: clang=%.2f camo=%.2f parts=%.2f ns",
			clang.NsPerCall, camo.NsPerCall, parts.NsPerCall)
	}
	// Magnitudes: single-digit to low-double-digit nanoseconds at 1.2 GHz.
	for _, r := range rows {
		if r.NsPerCall < 1 || r.NsPerCall > 30 {
			t.Errorf("%v: %.2f ns/call outside plausible range", r.Scheme, r.NsPerCall)
		}
	}
}

func TestRenderTable1Content(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTable1(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Kernel", "Invalid", "User"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestRenderTable2Content(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTable2(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "15") {
		t.Error("Table 2 output missing the 15-bit kernel PAC")
	}
}

// TestParallelRunAllMatchesSequential: the parallel runner must produce
// byte-identical renderings to the sequential one (isolated Systems,
// index-ordered assembly). A cheap subset keeps the test fast; the
// fig3/fig4 suites are pinned by TestRunSuiteParallelMatchesSequential
// in the lmbench and workload packages.
func TestParallelRunAllMatchesSequential(t *testing.T) {
	ids := []string{"table1", "table2", "keys", "fig2", "ablation-replay"}
	var seq, par bytes.Buffer
	seqStats, err := RunAll(&seq, ids, false)
	if err != nil {
		t.Fatal(err)
	}
	defer SetParallel(false)
	parStats, err := RunAll(&par, ids, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("parallel output diverges from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seq.String(), par.String())
	}
	if len(seqStats) != len(ids) || len(parStats) != len(ids) {
		t.Fatalf("stats lengths: seq %d, par %d, want %d", len(seqStats), len(parStats), len(ids))
	}
	// Sequential attribution is exact: the key-switch experiment must
	// have retired simulated work.
	for _, s := range seqStats {
		if !s.Exact {
			t.Errorf("%s: sequential stats not marked exact", s.ID)
		}
	}
	for _, s := range parStats {
		if s.Exact {
			t.Errorf("%s: parallel stats wrongly marked exact", s.ID)
		}
	}
	if seqStats[2].ID != "keys" || seqStats[2].Instrs == 0 {
		t.Errorf("key-switch stats: %+v, want nonzero simulated instructions", seqStats[2])
	}
}

// TestRunAllUnknownID rejects unknown experiment ids.
func TestRunAllUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if _, err := RunAll(&buf, []string{"nope"}, false); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestSMPFigureDeterminism pins the acceptance criterion that a 2-vCPU
// System runs the figures suite with byte-identical output across
// repeated runs: fig4 (the workload suite — every cell boots and runs a
// real 2-core machine) is rendered twice at CPUs: 2 and compared
// byte-for-byte.
func TestSMPFigureDeterminism(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		_, err := RunAllWith(context.Background(), &buf, RunOptions{
			IDs: []string{"fig4"}, CPUs: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render()
	if second := render(); second != first {
		t.Fatalf("2-vCPU fig4 rendering not byte-identical across runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if first == "" {
		t.Fatal("empty rendering")
	}
}
