package figures

// Determinism-under-observability tests (DESIGN.md §11): the
// instrumentation is host-side bookkeeping only, so experiment and
// campaign renderings must stay byte-identical while a concurrent
// scraper hammers the registry and a run trace records every phase.
// The suite runs under -race in CI, which also makes these tests the
// concurrent scrape-while-executing race check.

import (
	"bytes"
	"context"
	"io"
	"testing"

	"camouflage/internal/attack"
	"camouflage/internal/obs"
)

// withConcurrentScrapes runs f while a background goroutine
// continuously renders the Prometheus exposition and takes JSON
// snapshots.
func withConcurrentScrapes(t *testing.T, f func()) {
	t.Helper()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := obs.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
			obs.TakeSnapshot()
		}
	}()
	f()
	close(stop)
	<-done
}

// TestFigureBytesUnchangedUnderScrape renders the 2-vCPU workload
// figure quiet, then again with run tracing enabled and scrapes
// running concurrently: the bytes must match.
func TestFigureBytesUnchangedUnderScrape(t *testing.T) {
	render := func(trace *obs.Run) string {
		var buf bytes.Buffer
		_, err := RunAllWith(context.Background(), &buf, RunOptions{
			IDs: []string{"fig4"}, CPUs: 2, Trace: trace,
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	quiet := render(nil)
	run := obs.BeginRun("test", "fig4-scraped")
	var scraped string
	withConcurrentScrapes(t, func() {
		scraped = render(run)
	})
	run.End()
	if quiet != scraped {
		t.Fatalf("fig4 rendering changed under scraping:\n--- quiet ---\n%s\n--- scraped ---\n%s", quiet, scraped)
	}
	tr := run.Trace()
	if len(tr.Events) != 1 || tr.Events[0].Name != "exp:fig4" {
		t.Fatalf("trace events = %+v, want one exp:fig4 phase", tr.Events)
	}
	if tr.Events[0].Counters[obs.CRetired.SampleName()] == 0 {
		t.Fatalf("traced phase recorded no retired instructions: %+v", tr.Events[0].Counters)
	}
}

// TestCampaignBytesUnchangedUnderScrape double-runs a 2-vCPU campaign,
// the second run under concurrent scraping, and compares renderings.
func TestCampaignBytesUnchangedUnderScrape(t *testing.T) {
	render := func() string {
		rep, err := attack.RunCampaignContext(context.Background(), attack.CampaignOptions{
			Mutations: 2, Seed: 5, Parallel: true,
			Levels: []string{"full"}, CPUs: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep.Render(&buf)
		return buf.String()
	}
	quiet := render()
	var scraped string
	withConcurrentScrapes(t, func() {
		scraped = render()
	})
	if quiet != scraped {
		t.Fatalf("campaign rendering changed under scraping:\n--- quiet ---\n%s\n--- scraped ---\n%s", quiet, scraped)
	}
}
