// Package figures regenerates every table and figure of the paper's
// evaluation as text output, and maintains the experiment registry that
// maps each one to the modules that implement it (DESIGN.md §4).
package figures

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"camouflage/internal/analysis"
	"camouflage/internal/asm"
	"camouflage/internal/attack"
	"camouflage/internal/boot"
	"camouflage/internal/codegen"
	"camouflage/internal/cpu"
	"camouflage/internal/hyp"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
	"camouflage/internal/lmbench"
	"camouflage/internal/obs"
	"camouflage/internal/pac"
	"camouflage/internal/snapshot"
	"camouflage/internal/workload"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the index key (e.g. "fig2").
	ID string
	// Title is the display name.
	Title string
	// PaperRef cites the paper location.
	PaperRef string
	// Levels names the protection levels the experiment boots machines
	// under (nil for experiments that need no booted kernel).
	Levels []string
	// Run regenerates the artefact, writing it to w.
	Run func(w io.Writer) error
}

// threeLevels is the Figure 3/4 comparison set.
var threeLevels = []string{"none", "backward-edge", "full"}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "VMSAv8 address ranges", "Table 1", nil, RenderTable1},
		{"table2", "AArch64 pointer layout and PAC field", "Table 2, §5.4", nil, RenderTable2},
		{"keys", "Key switch cost (≈9 cycles per key)", "§6.1.1", nil, RenderKeySwitch},
		{"fig2", "Function call overhead by modifier scheme", "Figure 2", nil, RenderFigure2},
		{"fig3", "lmbench relative latencies", "Figure 3, §6.1.3", threeLevels, RenderFigure3},
		{"fig4", "User-space workload overheads", "Figure 4", threeLevels, RenderFigure4},
		{"cocci", "Coccinelle semantic-search statistics", "§5.3", nil, RenderCoccinelle},
		{"attacks", "Security evaluation matrix", "§6.2",
			[]string{"none", "backward-edge", "full", "full/zero-mod"}, RenderAttacks},
		{"ablation-keys", "Key management: XOM vs EL2 traps", "§4.1 vs §7 (Ferri)",
			[]string{"full"}, RenderKeyAblation},
		{"ablation-replay", "Replay surface census by modifier scheme", "§4.2, §7", nil, RenderReplayCensus},
		{"smp-replay", "Cross-core f_ops replay on a 2-vCPU machine", "§4.2, §6.2.1",
			[]string{"none", "backward-edge", "full", "full/zero-mod"}, RenderSMPReplay},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// parallelMode selects the concurrent execution strategy for the
// measurement functions in this package (and, via the Render functions,
// the lmbench and workload suites): one goroutine per (experiment,
// protection level) or per trial, each on a fully isolated simulated
// System. Results are assembled by index, so renderings are
// byte-identical to sequential runs — which is also why the mode being
// process-wide is harmless when the service daemon runs overlapping
// requests with different modes: either strategy produces the same
// bytes. It is atomic so overlapping RunAllContext calls are race-free.
var parallelMode atomic.Bool

// SetParallel sets the process-wide execution strategy (normally through
// RunAll's parallel argument, not directly).
func SetParallel(p bool) { parallelMode.Store(p) }

// IsParallel reports the current execution strategy.
func IsParallel() bool { return parallelMode.Load() }

// cpuMode is the vCPU count the machine-booting experiments target.
// Unlike parallelMode it *changes the rendered bytes* (SMP kernels have
// different cycle counts), so overlapping RunAllWith calls with
// different counts must not interleave: default-count runs share
// cpuMu's read side (cpuMode stays 1 while any of them is active),
// non-default runs hold it exclusively for their whole duration. This
// is what lets the service daemon serve concurrent default requests at
// full concurrency while a cpus=2 request runs alone.
var (
	cpuMu   sync.RWMutex
	cpuMode atomic.Int64
)

// CPUCount returns the vCPU count the current experiment run targets.
func CPUCount() int {
	if n := int(cpuMode.Load()); n > 1 {
		return n
	}
	return 1
}

// RunWithCPUs runs f — typically direct Experiment.Run calls — under
// the experiment-wide CPU-count regime (the exported form of the
// regime RunAllWith applies itself).
func RunWithCPUs(n int, f func() error) error { return withCPUMode(n, f) }

// withCPUMode runs f under the experiment-wide CPU-count regime.
func withCPUMode(n int, f func() error) error {
	if n <= 1 {
		cpuMu.RLock()
		defer cpuMu.RUnlock()
		return f()
	}
	cpuMu.Lock()
	defer cpuMu.Unlock()
	cpuMode.Store(int64(n))
	defer cpuMode.Store(1)
	return f()
}

// RunStats records one experiment execution for the machine-readable
// bench log (BENCH_results.json).
type RunStats struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Levels names the protection levels the experiment booted machines
	// under (absent for experiments that need no booted kernel), keeping
	// per-level trajectories comparable across revisions.
	Levels []string `json:"levels,omitempty"`
	WallNs int64    `json:"wall_ns"`
	// Cycles/Instrs are the simulated work retired during the experiment;
	// attribution is exact in sequential runs. In parallel runs the
	// counters include concurrently running experiments, so Exact=false
	// and only WallNs is per-experiment.
	Cycles      uint64  `json:"cycles"`
	Instrs      uint64  `json:"instrs"`
	InstrPerSec float64 `json:"instr_per_sec"`
	Exact       bool    `json:"exact"`
}

// RunAll runs the selected experiments (every registered one when ids is
// empty), writing each rendering to w in registry order framed by
// "==== id ====" headers, and returns per-experiment stats for the bench
// log. Sequential runs stream each rendering as it completes. With
// parallel=true, experiments execute concurrently into private buffers
// and are emitted in order — byte-for-byte identical to the sequential
// run.
func RunAll(w io.Writer, ids []string, parallel bool) ([]RunStats, error) {
	return RunAllContext(context.Background(), w, ids, parallel)
}

// RunOptions parameterizes an experiment run beyond the id selection.
type RunOptions struct {
	// IDs selects experiments (nil: all).
	IDs []string
	// Parallel runs experiments (and suite cells) concurrently.
	Parallel bool
	// CPUs is the vCPU count of every machine the experiments boot
	// (0/1: uniprocessor, byte-identical to pre-SMP renderings).
	CPUs int
	// Trace, when non-nil, receives one phase event per completed
	// experiment ("exp:<id>" with its wall time and counter deltas).
	// Tracing is host-side bookkeeping only: it never changes the
	// rendered bytes.
	Trace *obs.Run
}

// RunAllWith is RunAllContext with full options — the entry point the
// service daemon's `cpus` request field flows through.
func RunAllWith(ctx context.Context, w io.Writer, opts RunOptions) ([]RunStats, error) {
	var stats []RunStats
	err := withCPUMode(opts.CPUs, func() error {
		var err error
		stats, err = runAll(ctx, w, opts.IDs, opts.Parallel, opts.Trace)
		return err
	})
	return stats, err
}

// RunAllContext is RunAll with cancellation: the run stops between
// experiments once ctx is done (sequential mode) or skips experiments
// not yet started (parallel mode) and returns ctx.Err(). A cancelled
// run never emits a partial experiment rendering.
func RunAllContext(ctx context.Context, w io.Writer, ids []string, parallel bool) ([]RunStats, error) {
	return RunAllWith(ctx, w, RunOptions{IDs: ids, Parallel: parallel})
}

func runAll(ctx context.Context, w io.Writer, ids []string, parallel bool, trace *obs.Run) ([]RunStats, error) {
	SetParallel(parallel)
	var exps []Experiment
	if len(ids) == 0 {
		exps = All()
	} else {
		for _, id := range ids {
			e, ok := Lookup(id)
			if !ok {
				return nil, fmt.Errorf("figures: unknown experiment %q", id)
			}
			exps = append(exps, e)
		}
	}

	stats := make([]RunStats, len(exps))
	emit := func(i int, out []byte) error {
		fmt.Fprintf(w, "==== %s ====\n", exps[i].ID)
		if _, err := w.Write(out); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	run := func(i int, out io.Writer) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		e := exps[i]
		c0, r0 := cpu.TotalCounters()
		t0 := time.Now()
		err := e.Run(out)
		wall := time.Since(t0)
		c1, r1 := cpu.TotalCounters()
		stats[i] = RunStats{
			ID: e.ID, Title: e.Title, Levels: e.Levels,
			WallNs: wall.Nanoseconds(),
			Cycles: c1 - c0, Instrs: r1 - r0,
			Exact: !parallel,
		}
		if wall > 0 {
			stats[i].InstrPerSec = float64(r1-r0) / wall.Seconds()
		}
		// Parallel cells record in completion order; their deltas overlap
		// (same caveat as Exact=false).
		trace.Phase("exp:"+e.ID, wall)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		return nil
	}

	if !parallel {
		// Stream: each experiment's rendering is written as soon as it
		// finishes, so partial output survives a failure or interrupt.
		for i := range exps {
			var out bytes.Buffer
			if err := run(i, &out); err != nil {
				return nil, err
			}
			if err := emit(i, out.Bytes()); err != nil {
				return nil, err
			}
		}
		return stats, nil
	}

	outs := make([]bytes.Buffer, len(exps))
	errs := make([]error, len(exps))
	var wg sync.WaitGroup
	for i := range exps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run(i, &outs[i])
		}(i)
	}
	wg.Wait()
	for i := range exps {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if err := emit(i, outs[i].Bytes()); err != nil {
			return nil, err
		}
	}
	return stats, nil
}

// RenderTable1 reproduces Table 1.
func RenderTable1(w io.Writer) error {
	cfg := pac.DefaultConfig
	fmt.Fprintln(w, "TABLE 1: VMSAv8 address ranges (48-bit VA)")
	fmt.Fprintln(w, "  Address range                              Bit 55  Usage")
	rows := []struct {
		hi, lo uint64
		usage  string
	}{
		{0xFFFF_FFFF_FFFF_FFFF, 0xFFFF_0000_0000_0000, "Kernel"},
		{0xFFFE_FFFF_FFFF_FFFF, 0x0001_0000_0000_0000, "Invalid"},
		{0x0000_FFFF_FFFF_FFFF, 0x0000_0000_0000_0000, "User"},
	}
	for _, r := range rows {
		b55 := " "
		switch r.usage {
		case "Kernel":
			b55 = "1"
		case "User":
			b55 = "0"
		}
		fmt.Fprintf(w, "  %#016x - %#016x   %s     %s\n", r.hi, r.lo, b55, r.usage)
		// Verify the model agrees with the table.
		switch r.usage {
		case "Kernel":
			if !cfg.IsKernel(r.hi) || !cfg.IsKernel(r.lo) {
				return fmt.Errorf("model disagrees with Table 1 kernel range")
			}
		case "User":
			if cfg.IsKernel(r.lo) {
				return fmt.Errorf("model disagrees with Table 1 user range")
			}
		case "Invalid":
			if cfg.IsCanonical(r.lo) || cfg.IsCanonical(r.hi&^(0xFF<<56)|0x1<<48) {
				return fmt.Errorf("model disagrees with Table 1 hole")
			}
		}
	}
	return nil
}

// RenderTable2 reproduces Table 2 plus the §5.4 PAC-size computation.
func RenderTable2(w io.Writer) error {
	fmt.Fprintln(w, "TABLE 2: AArch64 pointer layout on Linux (48-bit VA, 4 KiB pages)")
	fmt.Fprintln(w, "  User pointer (x=0, TBI on):   [63:56]=tag [55]=0 [54:48]=PAC [47:12]=page [11:0]=offset")
	fmt.Fprintln(w, "  Kernel pointer (x=1, TBI off):[63:56]=PAC [55]=1 [54:48]=PAC [47:12]=page [11:0]=offset")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "  PAC size by configuration (§5.4: 15 bits in the typical case):")
	fmt.Fprintf(w, "  %-8s %-10s %-10s\n", "VA bits", "user PAC", "kernel PAC")
	for _, va := range []int{39, 42, 48, 52} {
		cfg := pac.Config{VABits: va, TBIUser: true}
		_, u := cfg.PACField(false)
		_, k := cfg.PACField(true)
		fmt.Fprintf(w, "  %-8d %-10d %-10d\n", va, u, k)
	}
	cfg := pac.DefaultConfig
	if _, k := cfg.PACField(true); k != 15 {
		return fmt.Errorf("kernel PAC = %d bits, want 15", k)
	}
	return nil
}

// KeySwitchStats is the §6.1.1 measurement.
type KeySwitchStats struct {
	// PerKeyCycles per trial (install+restore averaged over keys).
	PerKeyCycles []float64
	Mean         float64
	Variance     float64
}

// forEach runs f(0), …, f(n-1) — concurrently, one goroutine per index,
// when Parallel is set — via the shared replication scaffold. Callers
// assemble results by index, keeping output independent of schedule.
func forEach(n int, f func(i int) error) error {
	return snapshot.ForEach(n, IsParallel(), f)
}

// MeasureKeySwitch measures the per-key cost of a kernel entry/exit key
// switch over n trials (§6.1.1 uses n = 20). Each trial runs on its own
// isolated CPU; under Parallel the trials run concurrently.
func MeasureKeySwitch(n int) (KeySwitchStats, error) {
	st := KeySwitchStats{PerKeyCycles: make([]float64, n)}
	err := forEach(n, func(trial int) error {
		keys := boot.NewPRNG(uint64(trial) + 100).GenerateKeys()
		a := asm.New()
		a.Label("entry")
		a.BL("key_setter") // kernel entry: install via XOM immediates
		// Kernel exit: restore the three user keys from thread_struct.
		for i, id := range boot.KernelKeys {
			a.I(insn.LDP(insn.X6, insn.X7, insn.X0, int16(16*i)))
			switch id {
			case pac.KeyIA:
				a.I(insn.MSR(insn.APIAKeyLo_EL1, insn.X6))
				a.I(insn.MSR(insn.APIAKeyHi_EL1, insn.X7))
			case pac.KeyIB:
				a.I(insn.MSR(insn.APIBKeyLo_EL1, insn.X6))
				a.I(insn.MSR(insn.APIBKeyHi_EL1, insn.X7))
			default:
				a.I(insn.MSR(insn.APDBKeyLo_EL1, insn.X6))
				a.I(insn.MSR(insn.APDBKeyHi_EL1, insn.X7))
			}
		}
		a.I(insn.HLT(0))
		boot.EmitKeySetter(a, "key_setter", keys, boot.ModeV83)
		img, err := a.Link(map[string]uint64{".text": uint64(pac.KernelBase) | 0x8_0000})
		if err != nil {
			return err
		}
		c := cpu.New(cpu.Features{PAuth: true})
		for _, s := range img.Sections {
			c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
		}
		c.SetSP(1, uint64(pac.KernelBase)|0x10_0000)
		c.X[0] = uint64(pac.KernelBase) | 0x20_0000 // thread_struct keys
		c.PC = img.Symbols["entry"]
		start := c.Cycles
		stop := c.Run(10_000)
		if stop.Kind != cpu.StopHLT {
			return fmt.Errorf("keyswitch trial: %+v", stop)
		}
		// Total minus BL(1) + RET(1) + HLT(1) control overhead, per key,
		// per direction (3 keys × 2 directions).
		total := float64(c.Cycles-start) - 3
		st.PerKeyCycles[trial] = total / float64(2*len(boot.KernelKeys))
		return nil
	})
	if err != nil {
		return KeySwitchStats{}, err
	}
	for _, v := range st.PerKeyCycles {
		st.Mean += v
	}
	st.Mean /= float64(n)
	for _, v := range st.PerKeyCycles {
		st.Variance += (v - st.Mean) * (v - st.Mean)
	}
	st.Variance /= float64(n)
	return st, nil
}

// RenderKeySwitch reproduces the §6.1.1 measurement.
func RenderKeySwitch(w io.Writer) error {
	st, err := MeasureKeySwitch(20)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "KEY MANAGEMENT (§6.1.1): PAuth key switch on kernel entry/exit")
	fmt.Fprintf(w, "  trials: %d, keys per switch: 3 (IB, IA, DB)\n", len(st.PerKeyCycles))
	fmt.Fprintf(w, "  measured: %.2f cycles per key (variance %.3f)\n", st.Mean, st.Variance)
	fmt.Fprintln(w, "  paper:    8.88 cycles per key (variance 0.004)")
	return nil
}

// Fig2Row is one bar of Figure 2.
type Fig2Row struct {
	Scheme        codegen.Scheme
	CyclesPerCall float64
	NsPerCall     float64
}

// MeasureFigure2 measures per-call return-address protection overhead for
// each scheme.
func MeasureFigure2() ([]Fig2Row, error) {
	const iters = 512
	measure := func(s codegen.Scheme) (uint64, error) {
		cfg := &codegen.Config{Scheme: s}
		a := asm.New()
		a.Label("main")
		a.I(insn.MOVZ(insn.X5, iters, 0))
		a.Label("loop")
		a.BL("f")
		a.I(insn.SUBi(insn.X5, insn.X5, 1))
		a.CBNZ(insn.X5, "loop")
		a.I(insn.HLT(0))
		cfg.EmitFunc(a, codegen.FuncSpec{Name: "f", ALU: 1})
		img, err := a.Link(map[string]uint64{".text": uint64(pac.KernelBase) | 0x8_0000})
		if err != nil {
			return 0, err
		}
		c := cpu.New(cpu.Features{PAuth: true})
		c.SCTLR = insn.SCTLRPAuthAll
		for _, sec := range img.Sections {
			c.Bus.RAM.WriteBytes(sec.Base, sec.Bytes)
		}
		c.Signer.SetKey(pac.KeyIB, pac.Key{Hi: 1, Lo: 2})
		c.SetSP(1, uint64(pac.KernelBase)|0x10_0000)
		c.PC = img.Symbols["main"]
		start := c.Cycles
		if stop := c.Run(1_000_000); stop.Kind != cpu.StopHLT {
			return 0, fmt.Errorf("fig2 run: %+v", stop)
		}
		return c.Cycles - start, nil
	}
	// One measurement per protection variant, each on an isolated CPU;
	// under Parallel they run concurrently (index 0 is the baseline).
	schemes := []codegen.Scheme{
		codegen.SchemeNone, codegen.SchemeCamouflage,
		codegen.SchemePARTS, codegen.SchemeClangSP,
	}
	totals := make([]uint64, len(schemes))
	err := forEach(len(schemes), func(i int) error {
		t, err := measure(schemes[i])
		totals[i] = t
		return err
	})
	if err != nil {
		return nil, err
	}
	base := totals[0]
	var rows []Fig2Row
	for i, s := range schemes[1:] {
		cyc := float64(totals[i+1]-base) / iters
		rows = append(rows, Fig2Row{
			Scheme:        s,
			CyclesPerCall: cyc,
			NsPerCall:     cyc * 1e9 / float64(cpu.ClockHz),
		})
	}
	return rows, nil
}

// RenderFigure2 reproduces Figure 2 (function call overhead, ns).
func RenderFigure2(w io.Writer) error {
	rows, err := MeasureFigure2()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "FIGURE 2: Function call overhead (ns per call, 1.2 GHz Cortex-A53 model)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-34s %6.2f ns  (%4.1f cycles)  %s\n",
			r.Scheme, r.NsPerCall, r.CyclesPerCall, bar(r.NsPerCall, 2))
	}
	fmt.Fprintln(w, "  (paper ordering: SP/Clang < proposed < PARTS — §6.1.2)")
	return nil
}

// RenderFigure3 reproduces Figure 3 (lmbench relative latencies).
func RenderFigure3(w io.Writer) error {
	results, err := lmbench.RunSuiteCPUs(IsParallel(), CPUCount())
	if err != nil {
		return err
	}
	rel := lmbench.Relative(results)
	abs := map[string]map[string]float64{}
	for _, r := range results {
		if abs[r.Bench] == nil {
			abs[r.Bench] = map[string]float64{}
		}
		abs[r.Bench][r.Level] = r.NsPerIter
	}
	fmt.Fprintln(w, "FIGURE 3: lmbench latencies relative to the unprotected kernel")
	fmt.Fprintf(w, "  %-18s %-10s %-14s %-10s %s\n", "benchmark", "baseline", "backward-edge", "full", "")
	for _, b := range lmbench.Suite() {
		r := rel[b.Name]
		fmt.Fprintf(w, "  %-18s %7.0fns  x%-12.3f x%-9.3f %s\n",
			b.Name, abs[b.Name]["none"], r["backward-edge"], r["full"], bar((r["full"]-1)*100, 2))
	}
	return nil
}

// RenderFigure4 reproduces Figure 4 (user-space workloads).
func RenderFigure4(w io.Writer) error {
	results, err := workload.RunSuiteCPUs(IsParallel(), CPUCount())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "FIGURE 4: User-space workload cost relative to the unprotected kernel")
	fmt.Fprintf(w, "  %-20s %-14s %-10s\n", "workload", "backward-edge", "full")
	rel := map[string]map[string]float64{}
	for _, r := range results {
		if rel[r.Workload] == nil {
			rel[r.Workload] = map[string]float64{}
		}
		rel[r.Workload][r.Level] = r.Relative
	}
	for _, wl := range workload.Suite() {
		m := rel[wl.Name]
		fmt.Fprintf(w, "  %-20s x%-13.4f x%-9.4f %s\n",
			wl.Name, m["backward-edge"], m["full"], bar((m["full"]-1)*100, 1))
	}
	gm := workload.GeoMeanOverhead(results, "full")
	fmt.Fprintf(w, "  geometric mean (full): +%.2f%%  (paper: < 4%%)\n", (gm-1)*100)
	return nil
}

// RenderCoccinelle reproduces the §5.3 statistics.
func RenderCoccinelle(w io.Writer) error {
	c := analysis.GenerateLinux52Corpus(1)
	s := analysis.SemanticSearch(c)
	fmt.Fprintln(w, "COCCINELLE SEMANTIC SEARCH (§5.3) over the kernel source model:")
	fmt.Fprintf(w, "  function-pointer members assigned at run time: %d (paper: 1285)\n", s.RuntimeFuncPtrMembers)
	fmt.Fprintf(w, "  compound types containing them:                %d (paper: 504)\n", s.TypesWithRuntimeFP)
	fmt.Fprintf(w, "  types with more than one (→ ops tables):       %d (paper: 229)\n", s.TypesWithMultiple)
	rw := analysis.PlanRewrites(c)
	fmt.Fprintf(w, "  planned get/set rewrites: %d (e.g. %s()/%s())\n", len(rw), rw[0].Getter, rw[0].Setter)
	if s != analysis.Linux52Stats {
		return fmt.Errorf("statistics diverge from §5.3")
	}
	return nil
}

// RenderAttacks reproduces the §6.2 security matrix.
func RenderAttacks(w io.Writer) error {
	reports, err := attack.MatrixCPUs(CPUCount())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "SECURITY EVALUATION (§6.2): attack outcome by kernel build")
	fmt.Fprintf(w, "  %-26s %-15s %-13s %s\n", "attack", "build", "outcome", "detail")
	sort.SliceStable(reports, func(i, j int) bool { return reports[i].Attack < reports[j].Attack })
	for _, r := range reports {
		fmt.Fprintf(w, "  %-26s %-15s %-13s %s\n", r.Attack, r.Level, r.Outcome, r.Detail)
	}
	bcfg := codegen.ConfigFull()
	bcfg.NumCPUs = CPUCount()
	rep, err := attack.BruteForcePAC(bcfg, "full", 8)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-26s %-15s halted=%v after %d attempts (threshold %d, §5.4)\n",
		"PAC brute force", "full", rep.Halted, rep.Attempts, rep.Threshold)
	return nil
}

// RenderKeyAblation compares XOM key installation with the Ferri-style
// EL2-trap alternative (§7).
func RenderKeyAblation(w io.Writer) error {
	// XOM path: measured on a real booted kernel (warm-pooled).
	kcfg := codegen.ConfigFull()
	kcfg.NumCPUs = CPUCount()
	opts := kernel.Options{Config: kcfg, Seed: 5}
	m, err := snapshot.Shared.Acquire(snapshot.KeyFor(opts), snapshot.BootOptions(opts))
	if err != nil {
		return err
	}
	defer m.Release()
	k := m.K
	before := k.CPU.Cycles
	if err := k.CallGuest(k.Img.Symbols["key_setter"]); err != nil {
		return err
	}
	xom := k.CPU.Cycles - before - 2 // minus stub blr+hlt

	before = k.CPU.Cycles
	k.Hyp.EscrowKeys(k.KernelKeysForTest())
	if err := k.Hyp.TrapInstallKeys(pac.KeyIB, pac.KeyIA, pac.KeyDB); err != nil {
		return err
	}
	trap := k.CPU.Cycles - before

	fmt.Fprintln(w, "ABLATION: kernel key installation, XOM setter vs EL2 trap (§4.1 vs Ferri et al.)")
	fmt.Fprintf(w, "  XOM key-setter (3 keys):    %4d cycles\n", xom)
	fmt.Fprintf(w, "  EL2 trap install (3 keys):  %4d cycles (trap round trip %d)\n", trap, hyp.TrapCycles)
	fmt.Fprintf(w, "  ratio: %.1fx — traps \"are not intended and optimized for frequent occurrence\" (§7)\n",
		float64(trap)/float64(xom))
	if trap <= xom {
		return fmt.Errorf("ablation inverted: trap (%d) <= XOM (%d)", trap, xom)
	}
	return nil
}

// RenderReplayCensus reproduces the E10 replay-surface comparison.
func RenderReplayCensus(w io.Writer) error {
	const threads, depths, funcs = 16, 32, 16
	fmt.Fprintln(w, "REPLAY SURFACE (§4.2, §7): modifier collisions across sign contexts")
	fmt.Fprintf(w, "  contexts: %d threads x %d depths x %d functions (16 KiB stack stride)\n",
		threads, depths, funcs)
	for _, s := range []pac.ModifierScheme{pac.ModifierClangSP, pac.ModifierPARTS, pac.ModifierCamouflage} {
		r := attack.ReplayCensus(s, threads, depths, funcs)
		fmt.Fprintf(w, "  %-34s %8d colliding pairs\n", s, r.CollidingPairs)
	}
	return nil
}

// RenderSMPReplay runs the cross-core f_ops replay on real 2-vCPU
// machines (or the run's configured count when higher): the SMP
// counterpart of the synthetic ReplayCensus — instead of counting
// modifier collisions, it stages the reuse attack across concurrently
// running cores and reports which builds stop it.
func RenderSMPReplay(w io.Writer) error {
	cpus := CPUCount()
	if cpus < 2 {
		cpus = 2
	}
	levels := attack.Levels()
	reports := make([]attack.Report, len(levels))
	err := forEach(len(levels), func(i int) error {
		cfg := levels[i].Cfg()
		cfg.NumCPUs = cpus
		var err error
		reports[i], err = attack.CrossCoreReplay(cfg, levels[i].Name)
		return err
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "CROSS-CORE REPLAY (§6.2.1 on a %d-vCPU machine): donor on core 0, recipient on core 1\n", cpus)
	fmt.Fprintf(w, "  %-26s %-15s %-13s %s\n", "attack", "build", "outcome", "detail")
	for _, r := range reports {
		fmt.Fprintf(w, "  %-26s %-15s %-13s %s\n", r.Attack, r.Level, r.Outcome, r.Detail)
	}
	fmt.Fprintln(w, "  (kernel PAuth keys are per-boot, not per-core: only the §4.3 address-bound")
	fmt.Fprintln(w, "   modifier — not core isolation — decides whether the transplant authenticates)")
	return nil
}

// bar renders a crude horizontal bar for terminal figures.
func bar(value float64, unitsPerChar float64) string {
	n := int(value / unitsPerChar)
	if n < 0 {
		n = 0
	}
	if n > 40 {
		n = 40
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
